// Distributed PTRANS: bitwise gates against the serial reference, ragged
// process grids, and collective-dispatch invariance (forced tree vs forced
// ring must not change a single bit of the assembled matrix).
#include <gtest/gtest.h>

#include <limits>
#include <utility>

#include "hpcc/ptrans.h"
#include "tune/knobs.h"
#include "tune/search_space.h"
#include "util/matrix.h"

namespace xphi {
namespace {

using hpcc::PtransOptions;
using hpcc::PtransResult;
using hpcc::ptrans_reference;
using hpcc::run_ptrans;
using hpl::Grid;
using util::Matrix;

TEST(Ptrans, SquareGridMatchesReferenceBitwise) {
  const std::size_t n = 64;
  PtransOptions opt;
  opt.nb = 16;
  const PtransResult r = run_ptrans(n, Grid{2, 2}, 7, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.residual, 0.0);
  const Matrix<double> ref = ptrans_reference(n, 7);
  ASSERT_EQ(r.a.rows(), n);
  EXPECT_EQ(util::max_abs_diff<double>(r.a.view(), ref.view()), 0.0);
}

TEST(Ptrans, SingleRankGrid) {
  const PtransResult r = run_ptrans(33, Grid{1, 1}, 3);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.residual, 0.0);
  EXPECT_EQ(r.gbytes_per_s, 0.0);  // nothing crossed a rank boundary
}

TEST(Ptrans, NonUnitAlphaBetaStaysBitwise) {
  PtransOptions opt;
  opt.nb = 16;
  opt.alpha = -2.5;
  opt.beta = 0.5;
  const PtransResult r = run_ptrans(48, Grid{2, 2}, 11, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.residual, 0.0);
  const Matrix<double> ref = ptrans_reference(48, 11, opt.alpha, opt.beta);
  EXPECT_EQ(util::max_abs_diff<double>(r.a.view(), ref.view()), 0.0);
}

TEST(Ptrans, MatrixSmallerThanOneBlock) {
  PtransOptions opt;
  opt.nb = 16;
  const PtransResult r = run_ptrans(10, Grid{2, 2}, 5, opt);
  ASSERT_TRUE(r.ok);
  const Matrix<double> ref = ptrans_reference(10, 5);
  EXPECT_EQ(util::max_abs_diff<double>(r.a.view(), ref.view()), 0.0);
}

/// The ISSUE's ragged-grid gate: non-square P x Q with N not divisible by
/// nb, run under both forced collective dispatch modes, bit-compared
/// against each other and the serial reference.
void ragged_grid_case(int p, int q) {
  const std::size_t n = 70;  // 70 = 4*16 + 6: ragged against nb = 16
  PtransOptions tree;
  tree.nb = 16;
  tree.net_crossover_doubles = std::numeric_limits<std::size_t>::max();
  PtransOptions ring = tree;
  ring.net_crossover_doubles = 1;  // everything above 1 double rides the ring
  ring.net_ring_segment = 128;

  const PtransResult rt = run_ptrans(n, Grid{p, q}, 13, tree);
  const PtransResult rr = run_ptrans(n, Grid{p, q}, 13, ring);
  ASSERT_TRUE(rt.ok);
  ASSERT_TRUE(rr.ok);
  EXPECT_EQ(rt.residual, 0.0);
  EXPECT_EQ(rr.residual, 0.0);

  const Matrix<double> ref = ptrans_reference(n, 13);
  EXPECT_EQ(util::max_abs_diff<double>(rt.a.view(), ref.view()), 0.0);
  EXPECT_EQ(util::max_abs_diff<double>(rr.a.view(), rt.a.view()), 0.0);
  EXPECT_EQ(rr.checksum, rt.checksum);  // order-pinned ring allreduce

  // The dispatch counters prove the forcing took effect.
  std::size_t tree_trees = 0, tree_rings = 0, ring_trees = 0, ring_rings = 0;
  for (const auto& s : rt.comm_stats) {
    tree_trees += s.tree_collectives;
    tree_rings += s.ring_collectives;
  }
  for (const auto& s : rr.comm_stats) {
    ring_trees += s.tree_collectives;
    ring_rings += s.ring_collectives;
  }
  EXPECT_GT(tree_trees, 0u);
  EXPECT_EQ(tree_rings, 0u);
  EXPECT_GT(ring_rings, 0u);
  EXPECT_EQ(ring_trees, 0u);
}

TEST(Ptrans, RaggedGrid2x3ForcedTreeVsRingBitwise) { ragged_grid_case(2, 3); }
TEST(Ptrans, RaggedGrid3x2ForcedTreeVsRingBitwise) { ragged_grid_case(3, 2); }

TEST(Ptrans, SkipGatherStillVerifies) {
  PtransOptions opt;
  opt.nb = 16;
  opt.skip_gather = true;
  const PtransResult r = run_ptrans(40, Grid{2, 2}, 9, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.residual, 0.0);
  EXPECT_EQ(r.a.rows(), 0u);
}

TEST(Ptrans, TransposeBlockedRectangular) {
  Matrix<double> src(37, 53), dst(53, 37);
  util::fill_hpl_matrix(src.view(), 21);
  hpcc::transpose_blocked(std::as_const(src).view(), dst.view());
  for (std::size_t i = 0; i < src.rows(); ++i)
    for (std::size_t j = 0; j < src.cols(); ++j)
      ASSERT_EQ(dst(j, i), src(i, j));
}

TEST(Ptrans, KnobSpaceAndRoundTrip) {
  const tune::SearchSpace s = tune::spaces::ptrans();
  ASSERT_EQ(s.dims(), 1u);
  EXPECT_EQ(s.dim(0).name, "ptrans_nb");
  EXPECT_EQ(s.values_at(s.default_point())[0], 64);

  tune::Knobs k;
  k.ptrans_nb = 128;
  const auto decoded = tune::knobs_from_values(tune::values_from_knobs(k));
  EXPECT_EQ(decoded.ptrans_nb, 128u);
}

}  // namespace
}  // namespace xphi
