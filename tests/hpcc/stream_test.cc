// STREAM: the closed-form verification gate under serial, pooled and
// explicit-chunk execution.
#include <gtest/gtest.h>

#include <cmath>

#include "hpcc/stream.h"
#include "tune/knobs.h"
#include "tune/search_space.h"
#include "util/thread_pool.h"

namespace xphi {
namespace {

using hpcc::StreamOptions;
using hpcc::StreamResult;
using hpcc::run_stream;

TEST(Stream, SerialVerifies) {
  StreamOptions opt;
  opt.elements = 1 << 14;
  opt.reps = 3;
  const StreamResult r = run_stream(opt);
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.residual, 1e-13);
  EXPECT_GT(r.copy_gbs, 0.0);
  EXPECT_GT(r.scale_gbs, 0.0);
  EXPECT_GT(r.add_gbs, 0.0);
  EXPECT_GT(r.triad_gbs, 0.0);
}

TEST(Stream, PooledVerifies) {
  util::ThreadPool pool(3);
  StreamOptions opt;
  opt.elements = 1 << 16;
  opt.reps = 2;
  opt.pool = &pool;
  const StreamResult r = run_stream(opt);
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.residual, 1e-13);
  EXPECT_GT(r.triad_gbs, 0.0);
}

TEST(Stream, ExplicitChunkVerifies) {
  util::ThreadPool pool(2);
  for (const std::size_t chunk : {std::size_t{1000}, std::size_t{65536}}) {
    StreamOptions opt;
    opt.elements = 50000;  // ragged against both chunks
    opt.reps = 2;
    opt.chunk = chunk;
    opt.pool = &pool;
    const StreamResult r = run_stream(opt);
    ASSERT_TRUE(r.ok) << "chunk=" << chunk;
    EXPECT_LT(r.residual, 1e-13);
  }
}

TEST(Stream, TinyArrayStillFinite) {
  StreamOptions opt;
  opt.elements = 3;
  opt.reps = 1;
  const StreamResult r = run_stream(opt);
  ASSERT_TRUE(r.ok);
  // The clock floor keeps bandwidths finite even when a kernel is faster
  // than the timer tick.
  EXPECT_TRUE(std::isfinite(r.copy_gbs));
  EXPECT_TRUE(std::isfinite(r.triad_gbs));
}

TEST(Stream, KnobSpaceAndRoundTrip) {
  const tune::SearchSpace s = tune::spaces::stream();
  ASSERT_EQ(s.dims(), 1u);
  EXPECT_EQ(s.dim(0).name, "stream_chunk");
  EXPECT_EQ(s.values_at(s.default_point())[0], 65536);

  tune::Knobs k;
  k.stream_chunk = 4096;
  const auto decoded = tune::knobs_from_values(tune::values_from_knobs(k));
  EXPECT_EQ(decoded.stream_chunk, 4096u);
}

}  // namespace
}  // namespace xphi
