#include "hpl/block_cyclic.h"

#include <gtest/gtest.h>

#include <vector>

namespace xphi::hpl {
namespace {

TEST(Grid, RankMapping) {
  Grid g{2, 3};
  EXPECT_EQ(g.ranks(), 6);
  EXPECT_EQ(g.rank_of(1, 2), 5);
  EXPECT_EQ(g.prow_of(5), 1);
  EXPECT_EQ(g.pcol_of(5), 2);
}

TEST(BlockCyclic, OwnerCyclesThroughRows) {
  BlockCyclic d(100, 10, Grid{2, 2});
  EXPECT_EQ(d.owner_prow(0), 0);
  EXPECT_EQ(d.owner_prow(9), 0);
  EXPECT_EQ(d.owner_prow(10), 1);
  EXPECT_EQ(d.owner_prow(20), 0);
  EXPECT_EQ(d.owner_pcol(35), 1);
}

TEST(BlockCyclic, GlobalLocalRoundTrip) {
  BlockCyclic d(97, 8, Grid{3, 2});
  for (std::size_t g = 0; g < 97; ++g) {
    const int prow = d.owner_prow(g);
    const std::size_t lr = d.local_row(g);
    EXPECT_EQ(d.global_row(prow, lr), g);
    const int pcol = d.owner_pcol(g);
    const std::size_t lc = d.local_col(g);
    EXPECT_EQ(d.global_col(pcol, lc), g);
  }
}

TEST(BlockCyclic, LocalExtentsSumToGlobal) {
  for (std::size_t n : {64u, 97u, 100u, 128u}) {
    for (int p : {1, 2, 3, 4}) {
      BlockCyclic d(n, 8, Grid{p, 1});
      std::size_t total = 0;
      for (int r = 0; r < p; ++r) total += d.local_rows(r);
      EXPECT_EQ(total, n) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BlockCyclic, LocalRowsMatchEnumeration) {
  // The closed-form extents must match brute-force counting.
  for (std::size_t n : {40u, 41u, 47u, 48u, 60u}) {
    for (int p : {1, 2, 3}) {
      BlockCyclic d(n, 8, Grid{p, 2});
      std::vector<std::size_t> count(p, 0);
      for (std::size_t g = 0; g < n; ++g) count[d.owner_prow(g)]++;
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(d.local_rows(r), count[r]) << "n=" << n << " p=" << p
                                             << " r=" << r;
    }
  }
}

TEST(BlockCyclic, LocalColsMatchEnumeration) {
  for (std::size_t n : {40u, 47u, 55u}) {
    for (int q : {1, 2, 4}) {
      BlockCyclic d(n, 8, Grid{2, q});
      std::vector<std::size_t> count(q, 0);
      for (std::size_t g = 0; g < n; ++g) count[d.owner_pcol(g)]++;
      for (int c = 0; c < q; ++c) EXPECT_EQ(d.local_cols(c), count[c]);
    }
  }
}

TEST(BlockCyclic, LocalIndicesAreMonotone) {
  // Within a rank, increasing local row index means increasing global index —
  // the property the distributed HPL's trailing-suffix logic relies on.
  BlockCyclic d(120, 16, Grid{3, 1});
  for (int prow = 0; prow < 3; ++prow) {
    std::size_t prev = 0;
    for (std::size_t lr = 0; lr < d.local_rows(prow); ++lr) {
      const std::size_t g = d.global_row(prow, lr);
      if (lr > 0) {
        EXPECT_GT(g, prev);
      }
      prev = g;
    }
  }
}

TEST(BlockCyclic, SingleProcessOwnsEverything) {
  BlockCyclic d(50, 7, Grid{1, 1});
  EXPECT_EQ(d.local_rows(0), 50u);
  EXPECT_EQ(d.local_cols(0), 50u);
  for (std::size_t g = 0; g < 50; ++g) EXPECT_EQ(d.local_row(g), g);
}

}  // namespace
}  // namespace xphi::hpl
