#include "hpl/config.h"

#include <gtest/gtest.h>

namespace xphi::hpl {
namespace {

TEST(RunConfig, ParsesFullFile) {
  const auto res = parse_run_config(
      "# a comment\n"
      "Ns: 84000 168000\n"
      "NBs: 1200 2400\n"
      "grids: 1x1 2x2 10x10\n"
      "cards: 0 1 2\n"
      "scheme: basic\n"
      "memory: 128\n");
  ASSERT_TRUE(res.ok) << res.error;
  const auto& c = res.config;
  EXPECT_EQ(c.ns, (std::vector<std::size_t>{84000, 168000}));
  EXPECT_EQ(c.nbs, (std::vector<std::size_t>{1200, 2400}));
  ASSERT_EQ(c.grids.size(), 3u);
  EXPECT_EQ(c.grids[2], (std::pair<int, int>{10, 10}));
  EXPECT_EQ(c.cards, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.scheme, core::Lookahead::kBasic);
  EXPECT_EQ(c.memory_gib, 128u);
  EXPECT_EQ(c.combinations(), 2u * 2 * 3 * 3);
}

TEST(RunConfig, DefaultsWhenEmpty) {
  const auto res = parse_run_config("");
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.config.ns, (std::vector<std::size_t>{84000}));
  EXPECT_EQ(res.config.scheme, core::Lookahead::kPipelined);
}

TEST(RunConfig, CommentsAndBlankLines) {
  const auto res = parse_run_config(
      "\n"
      "   # only a comment\n"
      "Ns: 1000   # trailing comment\n");
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.config.ns, (std::vector<std::size_t>{1000}));
}

TEST(RunConfig, RejectsUnknownKey) {
  const auto res = parse_run_config("Nz: 100\n");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unknown key"), std::string::npos);
}

TEST(RunConfig, RejectsBadGrid) {
  EXPECT_FALSE(parse_run_config("grids: 2by2\n").ok);
  EXPECT_FALSE(parse_run_config("grids: 0x2\n").ok);
  EXPECT_FALSE(parse_run_config("grids: 2x\n").ok);
}

TEST(RunConfig, RejectsBadNumbers) {
  EXPECT_FALSE(parse_run_config("Ns: twelve\n").ok);
  EXPECT_FALSE(parse_run_config("Ns: 0\n").ok);
  EXPECT_FALSE(parse_run_config("NBs: -5\n").ok);
  EXPECT_FALSE(parse_run_config("cards: 99\n").ok);
}

TEST(RunConfig, RejectsBadScheme) {
  const auto res = parse_run_config("scheme: turbo\n");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("bad scheme"), std::string::npos);
}

TEST(RunConfig, RejectsMissingColon) {
  EXPECT_FALSE(parse_run_config("Ns 1000\n").ok);
}

TEST(RunConfig, LoadMissingFileFails) {
  const auto res = load_run_config("/nonexistent/path/HPL.dat");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("cannot open"), std::string::npos);
}

TEST(RunConfig, ErrorsCarryLineNumbers) {
  const auto res = parse_run_config("Ns: 100\nbogus: 1\n");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace xphi::hpl
