#include "hpl/distributed.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/getrf.h"
#include "blas/residual.h"
#include "util/rng.h"

namespace xphi::hpl {
namespace {

TEST(DistributedHpl, SingleRankMatchesSequentialOracle) {
  const std::size_t n = 48, nb = 8;
  const auto res = run_distributed_hpl(n, nb, Grid{1, 1}, 11);
  ASSERT_TRUE(res.ok);

  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 11);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-10);
}

TEST(DistributedHpl, TwoByTwoGridMatchesOracle) {
  const std::size_t n = 64, nb = 8;
  const auto res = run_distributed_hpl(n, nb, Grid{2, 2}, 5);
  ASSERT_TRUE(res.ok);

  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 5);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-9);
}

TEST(DistributedHpl, ResidualUnderThreshold2x2) {
  const auto res = run_distributed_hpl(96, 12, Grid{2, 2}, 7);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.residual, blas::kHplResidualThreshold);
}

TEST(DistributedHpl, RectangularGrids) {
  // 1xQ (row of processes) and Px1 (column) exercise the degenerate
  // broadcast and swap paths.
  EXPECT_TRUE(run_distributed_hpl(60, 10, Grid{1, 3}, 3).ok);
  EXPECT_TRUE(run_distributed_hpl(60, 10, Grid{3, 1}, 3).ok);
}

TEST(DistributedHpl, RaggedLastBlock) {
  // n not a multiple of nb: the final ragged panel crosses every code path.
  const auto res = run_distributed_hpl(70, 12, Grid{2, 2}, 9);
  EXPECT_TRUE(res.ok);
}

TEST(DistributedHpl, UnbalancedBlockCounts) {
  // 5 blocks over 2x3: some ranks own more blocks than others.
  const auto res = run_distributed_hpl(80, 16, Grid{2, 3}, 13);
  EXPECT_TRUE(res.ok);
}

TEST(DistributedHpl, MatchesOracleOnBiggerGrid) {
  const std::size_t n = 90, nb = 10;
  const auto res = run_distributed_hpl(n, nb, Grid{3, 2}, 21);
  ASSERT_TRUE(res.ok);
  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 21);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-9);
}

TEST(DistributedHpl, DistributedSolveAgreesWithGatheredSolve) {
  for (auto grid : {Grid{1, 1}, Grid{2, 2}, Grid{2, 3}, Grid{3, 1}}) {
    const auto res = run_distributed_hpl(84, 12, grid, 33);
    ASSERT_TRUE(res.ok);
    // The block forward/back substitution over the distributed factors must
    // reproduce the gathered solve to roundoff.
    EXPECT_LT(res.solve_agreement, 1e-10)
        << grid.p << "x" << grid.q;
    EXPECT_EQ(res.x.size(), 84u);
  }
}

TEST(DistributedHpl, DistributedSolutionSolvesTheSystem) {
  const std::size_t n = 72;
  const auto res = run_distributed_hpl(n, 8, Grid{2, 2}, 55);
  ASSERT_TRUE(res.ok);
  // Check Ax = b directly with the distributed x.
  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 55);
  std::vector<double> b(n);
  util::Rng rng(55 ^ 0xb0b);
  for (auto& v : b) v = rng.next_centered();
  const double resid = blas::hpl_residual<double>(a.view(), res.x, b);
  EXPECT_LT(resid, blas::kHplResidualThreshold);
}

TEST(DistributedHpl, HybridOffloadEngineMatchesPlainUpdate) {
  // Running every rank's trailing update through the functional offload
  // engine (queues + card threads + stealing) must not change the numerics.
  DistributedHplOptions opt;
  opt.use_offload_engine = true;
  opt.offload.mt = 24;
  opt.offload.nt = 24;
  opt.offload.host_steals = true;
  const auto hybrid = run_distributed_hpl(80, 16, Grid{2, 2}, 61, opt);
  const auto plain = run_distributed_hpl(80, 16, Grid{2, 2}, 61);
  ASSERT_TRUE(hybrid.ok);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(hybrid.ipiv, plain.ipiv);
  EXPECT_LT(util::max_abs_diff<double>(hybrid.factored.view(),
                                       plain.factored.view()),
            1e-11);
}

TEST(DistributedHpl, HybridOffloadTwoCardsPerRank) {
  DistributedHplOptions opt;
  opt.use_offload_engine = true;
  opt.offload.cards = 2;
  opt.offload.mt = 20;
  opt.offload.nt = 20;
  const auto res = run_distributed_hpl(72, 12, Grid{1, 2}, 77, opt);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.solve_agreement, 1e-10);
}

TEST(DistributedHpl, GatherScatterSwapMatchesPairwise) {
  // HPL's "long" swap and the pairwise exchange are different communication
  // patterns for the same permutation: identical factors required.
  DistributedHplOptions gather;
  gather.swap_algorithm = SwapAlgorithm::kGatherScatter;
  for (auto grid : {Grid{2, 1}, Grid{2, 2}, Grid{3, 2}}) {
    const auto a = run_distributed_hpl(72, 12, grid, 91, gather);
    const auto b = run_distributed_hpl(72, 12, grid, 91);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.ipiv, b.ipiv);
    EXPECT_EQ(util::max_abs_diff<double>(a.factored.view(), b.factored.view()),
              0.0)
        << grid.p << "x" << grid.q;
  }
}

TEST(DistributedHpl, GatherScatterSwapSolves) {
  DistributedHplOptions opt;
  opt.swap_algorithm = SwapAlgorithm::kGatherScatter;
  const auto res = run_distributed_hpl(90, 10, Grid{3, 1}, 17, opt);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.solve_agreement, 1e-10);
}

// Property sweep over grid shapes and block sizes.
class DistributedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributedSweep, ResidualPasses) {
  const auto [p, q, nb] = GetParam();
  const auto res = run_distributed_hpl(72, nb, Grid{p, q}, 100 + p * 10 + q);
  EXPECT_TRUE(res.ok) << "p=" << p << " q=" << q << " nb=" << nb
                      << " residual=" << res.residual;
}

INSTANTIATE_TEST_SUITE_P(Grids, DistributedSweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(6, 8, 24)));

}  // namespace
}  // namespace xphi::hpl
