#include "hpl/distributed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "blas/getrf.h"
#include "blas/residual.h"
#include "trace/timeline.h"
#include "util/rng.h"

namespace xphi::hpl {
namespace {

TEST(DistributedHpl, SingleRankMatchesSequentialOracle) {
  const std::size_t n = 48, nb = 8;
  const auto res = run_distributed_hpl(n, nb, Grid{1, 1}, 11);
  ASSERT_TRUE(res.ok);

  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 11);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-10);
}

TEST(DistributedHpl, TwoByTwoGridMatchesOracle) {
  const std::size_t n = 64, nb = 8;
  const auto res = run_distributed_hpl(n, nb, Grid{2, 2}, 5);
  ASSERT_TRUE(res.ok);

  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 5);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-9);
}

TEST(DistributedHpl, ResidualUnderThreshold2x2) {
  const auto res = run_distributed_hpl(96, 12, Grid{2, 2}, 7);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.residual, blas::kHplResidualThreshold);
}

TEST(DistributedHpl, RectangularGrids) {
  // 1xQ (row of processes) and Px1 (column) exercise the degenerate
  // broadcast and swap paths.
  EXPECT_TRUE(run_distributed_hpl(60, 10, Grid{1, 3}, 3).ok);
  EXPECT_TRUE(run_distributed_hpl(60, 10, Grid{3, 1}, 3).ok);
}

TEST(DistributedHpl, RaggedLastBlock) {
  // n not a multiple of nb: the final ragged panel crosses every code path.
  const auto res = run_distributed_hpl(70, 12, Grid{2, 2}, 9);
  EXPECT_TRUE(res.ok);
}

TEST(DistributedHpl, UnbalancedBlockCounts) {
  // 5 blocks over 2x3: some ranks own more blocks than others.
  const auto res = run_distributed_hpl(80, 16, Grid{2, 3}, 13);
  EXPECT_TRUE(res.ok);
}

TEST(DistributedHpl, MatchesOracleOnBiggerGrid) {
  const std::size_t n = 90, nb = 10;
  const auto res = run_distributed_hpl(n, nb, Grid{3, 2}, 21);
  ASSERT_TRUE(res.ok);
  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 21);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  EXPECT_EQ(res.ipiv, ipiv);
  EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-9);
}

TEST(DistributedHpl, DistributedSolveAgreesWithGatheredSolve) {
  for (auto grid : {Grid{1, 1}, Grid{2, 2}, Grid{2, 3}, Grid{3, 1}}) {
    const auto res = run_distributed_hpl(84, 12, grid, 33);
    ASSERT_TRUE(res.ok);
    // The block forward/back substitution over the distributed factors must
    // reproduce the gathered solve to roundoff.
    EXPECT_LT(res.solve_agreement, 1e-10)
        << grid.p << "x" << grid.q;
    EXPECT_EQ(res.x.size(), 84u);
  }
}

TEST(DistributedHpl, DistributedSolutionSolvesTheSystem) {
  const std::size_t n = 72;
  const auto res = run_distributed_hpl(n, 8, Grid{2, 2}, 55);
  ASSERT_TRUE(res.ok);
  // Check Ax = b directly with the distributed x.
  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 55);
  std::vector<double> b(n);
  util::Rng rng(55 ^ 0xb0b);
  for (auto& v : b) v = rng.next_centered();
  const double resid = blas::hpl_residual<double>(a.view(), res.x, b);
  EXPECT_LT(resid, blas::kHplResidualThreshold);
}

TEST(DistributedHpl, HybridOffloadEngineMatchesPlainUpdate) {
  // Running every rank's trailing update through the functional offload
  // engine (queues + card threads + stealing) must not change the numerics.
  DistributedHplOptions opt;
  opt.use_offload_engine = true;
  opt.offload.knobs.mt = 24;
  opt.offload.knobs.nt = 24;
  opt.offload.host_steals = true;
  const auto hybrid = run_distributed_hpl(80, 16, Grid{2, 2}, 61, opt);
  const auto plain = run_distributed_hpl(80, 16, Grid{2, 2}, 61);
  ASSERT_TRUE(hybrid.ok);
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(hybrid.ipiv, plain.ipiv);
  EXPECT_LT(util::max_abs_diff<double>(hybrid.factored.view(),
                                       plain.factored.view()),
            1e-11);
}

TEST(DistributedHpl, HybridOffloadTwoCardsPerRank) {
  DistributedHplOptions opt;
  opt.use_offload_engine = true;
  opt.offload.cards = 2;
  opt.offload.knobs.mt = 20;
  opt.offload.knobs.nt = 20;
  const auto res = run_distributed_hpl(72, 12, Grid{1, 2}, 77, opt);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.solve_agreement, 1e-10);
}

TEST(DistributedHpl, GatherScatterSwapMatchesPairwise) {
  // HPL's "long" swap and the pairwise exchange are different communication
  // patterns for the same permutation: identical factors required.
  DistributedHplOptions gather;
  gather.swap_algorithm = SwapAlgorithm::kGatherScatter;
  for (auto grid : {Grid{2, 1}, Grid{2, 2}, Grid{3, 2}}) {
    const auto a = run_distributed_hpl(72, 12, grid, 91, gather);
    const auto b = run_distributed_hpl(72, 12, grid, 91);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.ipiv, b.ipiv);
    EXPECT_EQ(util::max_abs_diff<double>(a.factored.view(), b.factored.view()),
              0.0)
        << grid.p << "x" << grid.q;
  }
}

TEST(DistributedHpl, GatherScatterSwapSolves) {
  DistributedHplOptions opt;
  opt.swap_algorithm = SwapAlgorithm::kGatherScatter;
  const auto res = run_distributed_hpl(90, 10, Grid{3, 1}, 17, opt);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.solve_agreement, 1e-10);
}

// ---------------------------------------------------------------------------
// Look-ahead schemes (paper Section IV, Figure 8)
// ---------------------------------------------------------------------------

TEST(DistributedHpl, LookaheadSchemesBitwiseIdentical) {
  // The three schedules reorder communication and split the update into
  // column subsets, but never change any per-element accumulation order
  // (see gemm_tiled.h) — so the factors must match kNone bit for bit,
  // across both swap algorithms and non-divisible N/NB/PxQ shapes.
  struct Shape { std::size_t n, nb; Grid grid; };
  for (const Shape& sh : {Shape{70, 12, Grid{2, 2}},    // ragged last block
                          Shape{84, 16, Grid{3, 2}},    // uneven block counts
                          Shape{48, 8, Grid{1, 3}}}) {  // single process row
    for (auto swap : {SwapAlgorithm::kPairwise, SwapAlgorithm::kGatherScatter}) {
      DistributedHplOptions base;
      base.swap_algorithm = swap;
      const auto none = run_distributed_hpl(sh.n, sh.nb, sh.grid, 29, base);
      ASSERT_TRUE(none.ok);
      for (auto scheme : {Lookahead::kBasic, Lookahead::kPipelined}) {
        DistributedHplOptions opt = base;
        opt.lookahead = scheme;
        const auto res = run_distributed_hpl(sh.n, sh.nb, sh.grid, 29, opt);
        const auto label = [&] {
          return ::testing::Message()
                 << "n=" << sh.n << " nb=" << sh.nb << " grid=" << sh.grid.p
                 << "x" << sh.grid.q << " swap=" << static_cast<int>(swap)
                 << " scheme=" << static_cast<int>(scheme);
        };
        ASSERT_TRUE(res.ok) << label();
        EXPECT_EQ(res.ipiv, none.ipiv) << label();
        EXPECT_EQ(util::max_abs_diff<double>(res.factored.view(),
                                             none.factored.view()),
                  0.0)
            << label();
        EXPECT_LT(res.solve_agreement, 1e-10) << label();
      }
    }
  }
}

TEST(DistributedHpl, LookaheadMatchesSequentialOracle) {
  const std::size_t n = 84, nb = 12;
  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 43);
  std::vector<std::size_t> ipiv(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, nb));
  for (auto scheme : {Lookahead::kBasic, Lookahead::kPipelined}) {
    DistributedHplOptions opt;
    opt.lookahead = scheme;
    const auto res = run_distributed_hpl(n, nb, Grid{2, 2}, 43, opt);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.ipiv, ipiv);
    EXPECT_LT(util::max_abs_diff<double>(res.factored.view(), a.view()), 1e-9);
  }
}

TEST(DistributedHpl, PipelinedSubsetCountsAllEquivalent) {
  // Any subset count — including 1 (degenerate) and more than the trailing
  // width supports — must leave the numerics untouched.
  const auto none = run_distributed_hpl(66, 11, Grid{2, 2}, 51);
  ASSERT_TRUE(none.ok);
  for (int subsets : {1, 2, 7, 16}) {
    DistributedHplOptions opt;
    opt.lookahead = Lookahead::kPipelined;
    opt.pipeline_subsets = subsets;
    const auto res = run_distributed_hpl(66, 11, Grid{2, 2}, 51, opt);
    ASSERT_TRUE(res.ok) << "subsets=" << subsets;
    EXPECT_EQ(res.ipiv, none.ipiv) << "subsets=" << subsets;
    EXPECT_EQ(util::max_abs_diff<double>(res.factored.view(),
                                         none.factored.view()),
              0.0)
        << "subsets=" << subsets;
  }
}

TEST(DistributedHpl, PipelinedRecordsOverlappingCommAndCompute) {
  // The point of the pipelined schedule: some rank's broadcast (panel or U
  // transfer wait) runs while another rank's GEMM computes. The timeline
  // must show cross-lane kBroadcast x kGemm overlap, and comm spans must
  // land in the kBroadcast/kRowSwap lanes.
  trace::Timeline tl;
  DistributedHplOptions opt;
  opt.lookahead = Lookahead::kPipelined;
  opt.pipeline_subsets = 4;
  opt.timeline = &tl;
  const auto res = run_distributed_hpl(240, 24, Grid{2, 2}, 71, opt);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(tl.lanes(), 4u);  // one lane per rank
  bool has_bcast = false, has_swap = false, has_gemm = false;
  for (const auto& s : tl.spans()) {
    has_bcast |= s.kind == trace::SpanKind::kBroadcast;
    has_swap |= s.kind == trace::SpanKind::kRowSwap;
    has_gemm |= s.kind == trace::SpanKind::kGemm;
  }
  EXPECT_TRUE(has_bcast);
  EXPECT_TRUE(has_swap);
  EXPECT_TRUE(has_gemm);
  EXPECT_GT(trace::cross_lane_overlap(tl, trace::SpanKind::kBroadcast,
                                      trace::SpanKind::kGemm),
            0.0);
}

TEST(DistributedHpl, DistributedResidualAgreesWithGatheredResidual) {
  // The allreduce-based residual never gathers A; it must still pass the
  // HPL test and land within FP-reordering distance of the gathered one.
  for (auto scheme : {Lookahead::kNone, Lookahead::kBasic, Lookahead::kPipelined}) {
    DistributedHplOptions opt;
    opt.lookahead = scheme;
    const auto res = run_distributed_hpl(96, 12, Grid{2, 2}, 23, opt);
    ASSERT_TRUE(res.ok);
    EXPECT_LT(res.distributed_residual, blas::kHplResidualThreshold);
    EXPECT_GT(res.distributed_residual, 0.0);
    // Same quantity up to summation order: within a small factor.
    EXPECT_LT(res.distributed_residual, 4 * res.residual + 1.0);
    EXPECT_GT(4 * res.distributed_residual + 1.0, res.residual);
  }
}

TEST(DistributedHpl, CommStatsExposePerRankTraffic) {
  DistributedHplOptions opt;
  opt.lookahead = Lookahead::kPipelined;
  const auto res = run_distributed_hpl(72, 12, Grid{2, 2}, 37, opt);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.comm_stats.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(res.comm_stats[r].messages_sent, 0u) << "rank " << r;
    EXPECT_GT(res.comm_stats[r].bytes_received, 0u) << "rank " << r;
    EXPECT_GT(res.comm_stats[r].mailbox_high_water, 0u) << "rank " << r;
  }
}

TEST(DistributedHpl, LookaheadWithOffloadEngine) {
  // Look-ahead over the functional offload engine: the combination the
  // paper's multi-node hybrid runs.
  DistributedHplOptions opt;
  opt.lookahead = Lookahead::kBasic;
  opt.use_offload_engine = true;
  opt.offload.knobs.mt = 20;
  opt.offload.knobs.nt = 20;
  const auto res = run_distributed_hpl(72, 12, Grid{2, 2}, 19, opt);
  ASSERT_TRUE(res.ok);
  EXPECT_LT(res.solve_agreement, 1e-10);
}

// Property sweep over grid shapes and block sizes.
class DistributedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributedSweep, ResidualPasses) {
  const auto [p, q, nb] = GetParam();
  const auto res = run_distributed_hpl(72, nb, Grid{p, q}, 100 + p * 10 + q);
  EXPECT_TRUE(res.ok) << "p=" << p << " q=" << q << " nb=" << nb
                      << " residual=" << res.residual;
}

INSTANTIATE_TEST_SUITE_P(Grids, DistributedSweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(6, 8, 24)));

}  // namespace
}  // namespace xphi::hpl
