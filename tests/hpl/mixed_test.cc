// Mixed-precision HPL (hpl/mixed.h + Precision::kMixed in hpl/distributed.h):
// the fp32 factorization must match the sequential float oracle bitwise, the
// fp64 refinement must pass the UNRELAXED residual gate, the whole solve must
// be deterministic (bitwise x, verbatim refinement trace), and — the chaos
// contract — net faults, a slow rank and a dead offload card must not change
// a single bit of the solution or the refinement schedule.
#include "hpl/mixed.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "blas/getrf.h"
#include "blas/residual.h"
#include "fault/injector.h"
#include "hpl/distributed.h"
#include "util/rng.h"

namespace xphi::hpl {
namespace {

using fault::Injector;
using fault::InjectorConfig;

/// The seeded HPL system every driver in the repo solves: util::hpl_entry
/// matrix, Rng(seed ^ 0xb0b) right-hand side.
struct System {
  util::Matrix<double> a;
  std::vector<double> b;
};

System make_system(std::size_t n, std::uint64_t seed) {
  System s{util::Matrix<double>(n, n), std::vector<double>(n)};
  util::fill_hpl_matrix(s.a.view(), seed);
  util::Rng rng(seed ^ 0xb0b);
  for (auto& v : s.b) v = rng.next_centered();
  return s;
}

/// Sequential fp32 oracle: demote then factor with the float instantiation
/// of the blocked driver — the reference every mixed factor path must
/// reproduce bit for bit.
bool float_oracle(const util::Matrix<double>& a, std::size_t nb,
                  util::Matrix<float>& lu, std::vector<std::size_t>& ipiv) {
  const std::size_t n = a.rows();
  lu = util::Matrix<float>(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      lu(r, c) = static_cast<float>(a(r, c));
  ipiv.assign(n, 0);
  return blas::getrf_blocked<float>(lu.view(), ipiv, nb);
}

bool bitwise_equal_f(util::MatrixView<const float> x,
                     util::MatrixView<const float> y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      if (std::bit_cast<std::uint32_t>(x(r, c)) !=
          std::bit_cast<std::uint32_t>(y(r, c)))
        return false;
  return true;
}

TEST(Mixed, FactorMatchesSequentialFloatOracle) {
  const std::size_t n = 96, nb = 16;
  const System sys = make_system(n, 42);
  MixedOptions mo;
  mo.nb = nb;
  MixedFactors f;
  ASSERT_TRUE(factor_mixed(sys.a.view(), f, mo));

  util::Matrix<float> lu;
  std::vector<std::size_t> ipiv;
  ASSERT_TRUE(float_oracle(sys.a, nb, lu, ipiv));
  EXPECT_EQ(f.ipiv, ipiv);
  EXPECT_TRUE(bitwise_equal_f(f.lu.view(), lu.view()));
}

TEST(Mixed, DagFactorBitwiseMatchesBlocked) {
  // The DAG executor reorders task completion, never any element's k-chain:
  // multi-worker fp32 factors must equal the sequential ones bit for bit.
  const std::size_t n = 80, nb = 16;
  const System sys = make_system(n, 7);
  MixedOptions seq;
  seq.nb = nb;
  MixedFactors fs;
  ASSERT_TRUE(factor_mixed(sys.a.view(), fs, seq));

  MixedOptions dag = seq;
  dag.factor_workers = 4;
  MixedFactors fd;
  ASSERT_TRUE(factor_mixed(sys.a.view(), fd, dag));
  EXPECT_EQ(fd.ipiv, fs.ipiv);
  EXPECT_TRUE(bitwise_equal_f(fd.lu.view(), fs.lu.view()));
}

TEST(Mixed, SolvePassesUnrelaxedResidualGate) {
  // The acceptance contract: the mixed solve is held to the SAME scaled
  // residual gate as fp64 HPL. The reported residual must be exactly the
  // standard fp64 evaluation of the returned x.
  for (const std::size_t n : {64u, 96u, 130u}) {  // incl. ragged last block
    const System sys = make_system(n, 42);
    MixedOptions mo;
    mo.nb = 32;
    const MixedSolveResult res = solve_mixed(sys.a.view(), sys.b, mo);
    ASSERT_TRUE(res.ok) << "n=" << n;
    EXPECT_LT(res.residual, blas::kHplResidualThreshold);
    EXPECT_EQ(res.residual, blas::hpl_residual<double>(sys.a.view(), res.x,
                                                       sys.b))
        << "n=" << n;
    // fp32 factors of the well-conditioned HPL matrix converge in a few
    // corrections; the trace logs one residual per evaluation (iterations
    // corrections + the final value).
    EXPECT_GE(res.iterations, 1);
    EXPECT_LE(res.iterations, 10);
    EXPECT_EQ(res.trace.size(), static_cast<std::size_t>(res.iterations) + 1);
    EXPECT_EQ(res.trace.back(), res.residual);
  }
}

TEST(Mixed, SeededSolveIsDeterministic) {
  const MixedSolveResult a = solve_mixed_seeded(96, 42);
  const MixedSolveResult b = solve_mixed_seeded(96, 42);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.x, b.x);          // bitwise: exact double equality
  EXPECT_EQ(a.trace, b.trace);  // verbatim refinement schedule
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Mixed, DivergenceCapReportsNotOk) {
  // A singular-ish system can't pass the gate: the deterministic schedule
  // must stop at the cap and say so rather than loop or lie.
  const std::size_t n = 32;
  util::Matrix<double> a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = 1.0 + 1e-14 * (r == c);
  std::vector<double> b(n, 1.0);
  MixedOptions mo;
  mo.nb = 8;
  mo.max_refine_iters = 3;
  const MixedSolveResult res = solve_mixed(a.view(), b, mo);
  EXPECT_FALSE(res.ok);
  EXPECT_LE(res.iterations, 3);
}

// ---------------------------------------------------------------------------
// Distributed mixed (Precision::kMixed through the 2D block-cyclic fabric)
// ---------------------------------------------------------------------------

TEST(MixedDistributed, FactorsMatchSequentialFloatOracleWidenedExact) {
  const std::size_t n = 64, nb = 8;
  DistributedHplOptions opt;
  opt.precision = Precision::kMixed;
  const auto res = run_distributed_hpl(n, nb, Grid{2, 2}, 5, opt);
  ASSERT_TRUE(res.ok);

  util::Matrix<double> a(n, n);
  util::fill_hpl_matrix(a.view(), 5);
  util::Matrix<float> lu;
  std::vector<std::size_t> ipiv;
  ASSERT_TRUE(float_oracle(a, nb, lu, ipiv));
  EXPECT_EQ(res.ipiv, ipiv);
  // result.factored carries the fp32 factors widened to double — widening
  // is exact, so the comparison is bitwise, not a tolerance.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      ASSERT_EQ(res.factored(r, c), static_cast<double>(lu(r, c)))
          << "(" << r << "," << c << ")";
}

TEST(MixedDistributed, SolutionPassesUnrelaxedGateOnEveryGrid) {
  for (auto grid : {Grid{1, 1}, Grid{2, 2}, Grid{2, 3}, Grid{3, 1}}) {
    DistributedHplOptions opt;
    opt.precision = Precision::kMixed;
    const auto res = run_distributed_hpl(72, 12, grid, 33, opt);
    ASSERT_TRUE(res.ok) << grid.p << "x" << grid.q;
    EXPECT_LT(res.residual, blas::kHplResidualThreshold);
    EXPECT_GE(res.refine_iterations, 1);
    ASSERT_FALSE(res.refine_trace.empty());
    // The trace logs the distributed (allreduced) residual; the gate runs
    // the sequential evaluation of the same x — same quantity up to
    // summation order, and both must pass.
    EXPECT_EQ(res.refine_trace.back(), res.distributed_residual);
    EXPECT_LT(res.distributed_residual, blas::kHplResidualThreshold);
    EXPECT_LT(res.residual, 4 * res.distributed_residual + 1.0);
    EXPECT_LT(res.distributed_residual, 4 * res.residual + 1.0);
    // Check Ax = b directly with the returned fp64 x.
    const System sys = make_system(72, 33);
    EXPECT_LT(blas::hpl_residual<double>(sys.a.view(), res.x, sys.b),
              blas::kHplResidualThreshold);
  }
}

TEST(MixedDistributed, DeterministicAndAgreesWithSharedSolver) {
  // Same run twice: bitwise-identical everything (the determinism contract
  // the chaos suite leans on). Against the shared-memory mixed solver the x
  // bits legitimately differ (the distributed residual r is an allreduce of
  // partial sums), but the driver's built-in sequential refine twin must
  // agree to refinement accuracy, and the solutions solve the same system.
  const std::size_t n = 64, nb = 8;
  DistributedHplOptions opt;
  opt.precision = Precision::kMixed;
  const auto a = run_distributed_hpl(n, nb, Grid{2, 2}, 42, opt);
  const auto b = run_distributed_hpl(n, nb, Grid{2, 2}, 42, opt);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.refine_trace, b.refine_trace);
  EXPECT_EQ(util::max_abs_diff<double>(a.factored.view(), b.factored.view()),
            0.0);
  EXPECT_LT(a.solve_agreement, 1e-6);  // vs the sequential refine twin

  MixedOptions mo;
  mo.nb = nb;
  const MixedSolveResult shared = solve_mixed_seeded(n, 42, mo);
  ASSERT_TRUE(shared.ok);
  const System sys = make_system(n, 42);
  EXPECT_LT(blas::hpl_residual<double>(sys.a.view(), a.x, sys.b),
            blas::kHplResidualThreshold);
  EXPECT_LT(blas::hpl_residual<double>(sys.a.view(), shared.x, sys.b),
            blas::kHplResidualThreshold);
}

TEST(MixedDistributed, Fp64PathIgnoresRefinementKnobs) {
  // Precision::kFp64 must be the exact pre-existing path: the mixed-only
  // knobs may not leak into it.
  DistributedHplOptions plain;
  DistributedHplOptions knobbed;
  knobbed.precision = Precision::kFp64;
  knobbed.refine_max_iters = 1;
  const auto a = run_distributed_hpl(64, 8, Grid{2, 2}, 17, plain);
  const auto b = run_distributed_hpl(64, 8, Grid{2, 2}, 17, knobbed);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.ipiv, b.ipiv);
  EXPECT_EQ(util::max_abs_diff<double>(a.factored.view(), b.factored.view()),
            0.0);
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_EQ(b.refine_iterations, 0);
  EXPECT_TRUE(b.refine_trace.empty());
}

// ---------------------------------------------------------------------------
// Chaos: the refinement schedule is part of the determinism contract
// ---------------------------------------------------------------------------

TEST(MixedChaos, NetDelayDropBitwiseIdenticalSolveAndTrace) {
  DistributedHplOptions base;
  base.precision = Precision::kMixed;
  const auto clean = run_distributed_hpl(72, 12, Grid{2, 2}, 19, base);
  ASSERT_TRUE(clean.ok);

  InjectorConfig fc;
  fc.seed = 3;
  fc.net = {.delay = 0.2, .drop = 0.1, .delay_us = 100};
  Injector inj(fc);
  DistributedHplOptions opt = base;
  opt.injector = &inj;
  const auto faulted = run_distributed_hpl(72, 12, Grid{2, 2}, 19, opt);

  ASSERT_TRUE(faulted.ok);
  EXPECT_GT(inj.fired(), 0u);
  EXPECT_EQ(faulted.ipiv, clean.ipiv);
  EXPECT_EQ(util::max_abs_diff<double>(faulted.factored.view(),
                                       clean.factored.view()),
            0.0);
  EXPECT_EQ(faulted.x, clean.x);
  EXPECT_EQ(faulted.refine_trace, clean.refine_trace);
  EXPECT_EQ(faulted.refine_iterations, clean.refine_iterations);
  EXPECT_EQ(faulted.residual, clean.residual);
}

TEST(MixedChaos, SlowRankBitwiseIdenticalSolveAndTrace) {
  DistributedHplOptions base;
  base.precision = Precision::kMixed;
  const auto clean = run_distributed_hpl(60, 12, Grid{2, 2}, 31, base);
  ASSERT_TRUE(clean.ok);

  InjectorConfig fc;
  fc.slow_rank = 1;
  fc.slow_rank_us = 200;
  Injector inj(fc);
  DistributedHplOptions opt = base;
  opt.injector = &inj;
  const auto faulted = run_distributed_hpl(60, 12, Grid{2, 2}, 31, opt);

  ASSERT_TRUE(faulted.ok);
  EXPECT_EQ(faulted.x, clean.x);
  EXPECT_EQ(faulted.refine_trace, clean.refine_trace);
  EXPECT_EQ(faulted.residual, clean.residual);
}

TEST(MixedChaos, DeadCardMidFactorBitwiseIdenticalSolveAndTrace) {
  // The full acceptance scenario: mixed factor through the offload engine
  // (fp32 operands widened through the fp64 engine, exactly), net faults
  // armed AND a card dying mid-factor in every rank's engine — survivors
  // absorb its tiles and nothing in the solution or the refinement
  // schedule may move.
  DistributedHplOptions base;
  base.precision = Precision::kMixed;
  base.use_offload_engine = true;
  base.offload.knobs.mt = base.offload.knobs.nt = 24;
  base.offload.cards = 2;
  const auto clean = run_distributed_hpl(72, 24, Grid{2, 2}, 23, base);
  ASSERT_TRUE(clean.ok);

  InjectorConfig fc;
  fc.seed = 2026;
  fc.net = {.delay = 0.15, .drop = 0.1, .delay_us = 100};
  fc.dma_request = {.drop = 0.1, .corrupt = 0.1, .delay_us = 100};
  fc.dma_result = {.drop = 0.1, .delay_us = 100};
  fc.dead_card = 1;
  fc.card_death_after = 0;  // dies on its first dequeue, mid-factor
  Injector inj(fc);
  DistributedHplOptions opt = base;
  opt.injector = &inj;
  opt.offload.injector = &inj;
  opt.offload.max_retries = 6;
  opt.offload.retry_timeout_ms = 4;
  const auto faulted = run_distributed_hpl(72, 24, Grid{2, 2}, 23, opt);

  ASSERT_TRUE(faulted.ok);
  EXPECT_GT(inj.fired(), 0u);
  EXPECT_EQ(faulted.ipiv, clean.ipiv);
  EXPECT_EQ(util::max_abs_diff<double>(faulted.factored.view(),
                                       clean.factored.view()),
            0.0);
  EXPECT_EQ(faulted.x, clean.x);
  EXPECT_EQ(faulted.refine_trace, clean.refine_trace);
  EXPECT_EQ(faulted.refine_iterations, clean.refine_iterations);
  EXPECT_EQ(faulted.residual, clean.residual);
}

}  // namespace
}  // namespace xphi::hpl
