#include "lu/dag.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace xphi::lu {
namespace {

TEST(PanelDag, FirstTaskIsPanelZero) {
  PanelDag dag(4);
  auto t = dag.acquire();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TaskKind::kPanelFactor);
  EXPECT_EQ(t->panel, 0u);
}

TEST(PanelDag, NothingElseReadyBeforePanelZeroCommits) {
  PanelDag dag(4);
  auto t = dag.acquire();
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(dag.acquire().has_value());
  dag.commit(*t);
  auto u = dag.acquire();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->kind, TaskKind::kUpdate);
  EXPECT_EQ(u->stage, 0u);
  EXPECT_EQ(u->panel, 1u);
}

TEST(PanelDag, LookaheadPrioritizesNextPanel) {
  // After Task2(0,1) commits, panel 1 is fully updated: Task1(1) must be
  // offered before the remaining stage-0 updates (the look-ahead).
  PanelDag dag(4);
  auto p0 = dag.acquire();
  dag.commit(*p0);
  auto u01 = dag.acquire();
  ASSERT_EQ(u01->panel, 1u);
  dag.commit(*u01);
  auto next = dag.acquire();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, TaskKind::kPanelFactor);
  EXPECT_EQ(next->panel, 1u);
}

TEST(PanelDag, UpdatesOfOneStageRunInParallel) {
  PanelDag dag(5);
  auto p0 = dag.acquire();
  dag.commit(*p0);
  // All four stage-0 updates can be outstanding at once.
  std::vector<Task> updates;
  for (int i = 0; i < 4; ++i) {
    auto t = dag.acquire();
    ASSERT_TRUE(t.has_value());
    // The first acquired update unlocks panel 1's factorization after commit,
    // but before any commit all acquires must be stage-0 updates.
    EXPECT_EQ(t->kind, TaskKind::kUpdate);
    EXPECT_EQ(t->stage, 0u);
    updates.push_back(*t);
  }
  EXPECT_FALSE(dag.acquire().has_value());
  EXPECT_EQ(dag.in_flight(), 4u);
  for (const auto& t : updates) dag.commit(t);
}

TEST(PanelDag, Task2RequiresPanelFactored) {
  PanelDag dag(3);
  auto p0 = dag.acquire();
  dag.commit(*p0);
  auto u1 = dag.acquire();  // Task2(0,1)
  dag.commit(*u1);
  auto p1 = dag.acquire();  // lookahead Task1(1)
  ASSERT_EQ(p1->kind, TaskKind::kPanelFactor);
  auto u2 = dag.acquire();  // Task2(0,2) still available
  ASSERT_TRUE(u2.has_value());
  EXPECT_EQ(u2->stage, 0u);
  dag.commit(*u2);
  // Task2(1,2) must NOT be offered until Task1(1) commits.
  EXPECT_FALSE(dag.acquire().has_value());
  dag.commit(*p1);
  auto u12 = dag.acquire();
  ASSERT_TRUE(u12.has_value());
  EXPECT_EQ(u12->stage, 1u);
  EXPECT_EQ(u12->panel, 2u);
}

TEST(PanelDag, LimitGatesLaterStages) {
  PanelDag dag(4);
  auto p0 = dag.acquire(/*limit=*/1);
  dag.commit(*p0);
  auto u01 = dag.acquire(1);
  dag.commit(*u01);
  // With limit 1, panel 1 may still be factored (cross-boundary lookahead)...
  auto p1 = dag.acquire(1);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->kind, TaskKind::kPanelFactor);
  EXPECT_EQ(p1->panel, 1u);
  dag.commit(*p1);
  // ...but stage-1 updates are beyond the episode.
  auto u02 = dag.acquire(1);
  ASSERT_TRUE(u02.has_value());
  dag.commit(*u02);
  auto u03 = dag.acquire(1);
  ASSERT_TRUE(u03.has_value());
  dag.commit(*u03);
  EXPECT_FALSE(dag.acquire(1).has_value());
  EXPECT_TRUE(dag.stages_complete(1));
  EXPECT_FALSE(dag.done());
}

TEST(PanelDag, SequentialDrainCompletesAllTasks) {
  // Greedy single-worker execution must terminate with every panel factored
  // and the exact task count: P panels + P(P-1)/2 updates.
  const std::size_t P = 8;
  PanelDag dag(P);
  std::size_t panels = 0, updates = 0;
  while (!dag.done()) {
    auto t = dag.acquire();
    ASSERT_TRUE(t.has_value());
    (t->kind == TaskKind::kPanelFactor ? panels : updates)++;
    dag.commit(*t);
  }
  EXPECT_EQ(panels, P);
  EXPECT_EQ(updates, P * (P - 1) / 2);
}

TEST(PanelDag, RandomizedInterleavingsRespectDependencies) {
  // Property test: with random acquire/commit interleavings, every commit
  // order must be consistent with the dependency rules.
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t P = 2 + rng.next_u64() % 7;
    PanelDag dag(P);
    std::vector<Task> in_flight;
    std::vector<bool> panel_done(P, false);
    std::vector<std::size_t> stage_committed(P, 0);
    while (!dag.done() || !in_flight.empty()) {
      const bool try_acquire = in_flight.empty() || (rng.next_u64() % 2 == 0);
      if (try_acquire) {
        auto t = dag.acquire();
        if (t) {
          // Check readiness invariants at acquisition time.
          if (t->kind == TaskKind::kPanelFactor) {
            EXPECT_EQ(stage_committed[t->panel], t->panel);
            EXPECT_FALSE(panel_done[t->panel]);
          } else {
            EXPECT_TRUE(panel_done[t->stage]);
            EXPECT_EQ(stage_committed[t->panel], t->stage);
          }
          in_flight.push_back(*t);
          continue;
        }
      }
      if (!in_flight.empty()) {
        const std::size_t pick = rng.next_u64() % in_flight.size();
        const Task t = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<long>(pick));
        dag.commit(t);
        if (t.kind == TaskKind::kPanelFactor)
          panel_done[t.panel] = true;
        else
          stage_committed[t.panel] = t.stage + 1;
      }
    }
    EXPECT_TRUE(dag.done());
  }
}

TEST(PanelDag, SinglePanelMatrix) {
  PanelDag dag(1);
  auto t = dag.acquire();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TaskKind::kPanelFactor);
  dag.commit(*t);
  EXPECT_TRUE(dag.done());
  EXPECT_FALSE(dag.acquire().has_value());
}

}  // namespace
}  // namespace xphi::lu
