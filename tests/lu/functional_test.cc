#include "lu/functional.h"

#include <gtest/gtest.h>

#include <vector>

#include "blas/getrf.h"
#include "blas/residual.h"
#include "util/rng.h"

namespace xphi::lu {
namespace {

TEST(DagLuFactor, MatchesSequentialBlockedFactorization) {
  const std::size_t n = 96, nb = 24;
  util::Matrix<double> a1(n, n), a2(n, n);
  util::fill_hpl_matrix(a1.view(), 9);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a2(r, c) = a1(r, c);
  std::vector<std::size_t> p1(n), p2(n);
  ASSERT_TRUE(blas::getrf_blocked<double>(a1.view(), p1, nb));
  ASSERT_TRUE(dag_lu_factor(a2.view(), p2, nb, /*workers=*/1));
  EXPECT_EQ(p1, p2);
  EXPECT_LT(util::max_abs_diff<double>(a1.view(), a2.view()), 1e-10);
}

TEST(DagLuFactor, MultiWorkerMatchesSingleWorker) {
  const std::size_t n = 120, nb = 30;
  util::Matrix<double> a1(n, n), a2(n, n);
  util::fill_hpl_matrix(a1.view(), 17);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a2(r, c) = a1(r, c);
  std::vector<std::size_t> p1(n), p2(n);
  ASSERT_TRUE(dag_lu_factor(a1.view(), p1, nb, 1));
  ASSERT_TRUE(dag_lu_factor(a2.view(), p2, nb, 4));
  EXPECT_EQ(p1, p2);
  // Dynamic scheduling changes execution order, not results.
  EXPECT_LT(util::max_abs_diff<double>(a1.view(), a2.view()), 1e-10);
}

TEST(FunctionalDagLu, PassesHplResidualSingleWorker) {
  const auto res = run_functional_dag_lu(100, 25, 1);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.residual, blas::kHplResidualThreshold);
}

TEST(FunctionalDagLu, PassesHplResidualFourWorkers) {
  const auto res = run_functional_dag_lu(150, 32, 4);
  EXPECT_TRUE(res.ok);
  EXPECT_LT(res.residual, blas::kHplResidualThreshold);
}

TEST(FunctionalDagLu, RaggedPanelWidth) {
  // n not a multiple of nb exercises the edge panels.
  const auto res = run_functional_dag_lu(130, 28, 3);
  EXPECT_TRUE(res.ok);
}

TEST(FunctionalDagLu, SinglePanelProblem) {
  const auto res = run_functional_dag_lu(20, 64, 2);
  EXPECT_TRUE(res.ok);
}

TEST(FunctionalDagLu, RepeatedRunsAreDeterministic) {
  const auto r1 = run_functional_dag_lu(80, 16, 3, /*seed=*/7);
  const auto r2 = run_functional_dag_lu(80, 16, 3, /*seed=*/7);
  EXPECT_TRUE(r1.ok);
  EXPECT_DOUBLE_EQ(r1.residual, r2.residual);
}

// Stress the scheduler protocol with many small panels and several threads —
// on a race this either deadlocks (test timeout) or corrupts the residual.
TEST(FunctionalDagLu, ManyPanelsStress) {
  const auto res = run_functional_dag_lu(144, 8, 4);
  EXPECT_TRUE(res.ok);
}

}  // namespace
}  // namespace xphi::lu
