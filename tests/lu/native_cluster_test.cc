#include "lu/native_cluster.h"

#include <gtest/gtest.h>

#include "lu/sim_scheduler.h"

namespace xphi::lu {
namespace {

sim::KncLuModel model() { return sim::KncLuModel{}; }
net::CostModel fabric() { return net::CostModel{}; }

TEST(NativeCluster, SingleNodeConsistentWithSectionIvDes) {
  // The cluster projection at 1 node must agree with the Figure 6 dynamic
  // scheduler at the same size (it is calibrated to).
  NativeClusterConfig cfg;
  cfg.n = 30000;
  const auto cluster = simulate_native_cluster(cfg, model(), fabric());
  NativeLuConfig des_cfg;
  des_cfg.n = 30000;
  const auto m = model();
  const auto des = simulate_dynamic_lu(
      des_cfg, m, model_tuned_plan(m, des_cfg.n, des_cfg.nb, 60));
  EXPECT_NEAR(cluster.efficiency, des.efficiency, 0.04);
}

TEST(NativeCluster, MemoryCapAtEightGiB) {
  NativeClusterConfig cfg;
  cfg.n = 40000;  // 12.8 GB > 8 GB GDDR
  EXPECT_FALSE(simulate_native_cluster(cfg, model(), fabric()).fits_memory);
  cfg.n = 28000;
  EXPECT_TRUE(simulate_native_cluster(cfg, model(), fabric()).fits_memory);
}

TEST(NativeCluster, WeakScalingLosesAFewPoints) {
  NativeClusterConfig one;
  one.n = 28000;
  NativeClusterConfig hundred;
  hundred.n = 280000;
  hundred.p = hundred.q = 10;
  const auto r1 = simulate_native_cluster(one, model(), fabric());
  const auto r100 = simulate_native_cluster(hundred, model(), fabric());
  EXPECT_LT(r100.efficiency, r1.efficiency);
  EXPECT_GT(r100.efficiency, r1.efficiency - 0.08);
  EXPECT_GT(r100.comm_fraction, r1.comm_fraction);
}

TEST(NativeCluster, ThroughputScalesWithNodes) {
  NativeClusterConfig a;
  a.n = 56000;
  a.p = a.q = 2;
  NativeClusterConfig b;
  b.n = 280000;
  b.p = b.q = 10;
  const auto ra = simulate_native_cluster(a, model(), fabric());
  const auto rb = simulate_native_cluster(b, model(), fabric());
  EXPECT_NEAR(rb.gflops / ra.gflops, 25.0, 3.0);  // 100 vs 4 nodes
}

TEST(NativeCluster, SlowNicLatencyHurtsOnlySlightly) {
  NativeClusterConfig cfg;
  cfg.n = 112000;
  cfg.p = cfg.q = 4;
  const auto base = simulate_native_cluster(cfg, model(), fabric());
  cfg.net_latency_factor = 20.0;
  const auto slow = simulate_native_cluster(cfg, model(), fabric());
  EXPECT_LT(slow.gflops, base.gflops);
  EXPECT_GT(slow.gflops, base.gflops * 0.95);  // latency, not bandwidth bound
}

TEST(Machine, PowerSpecsPresent) {
  EXPECT_GT(sim::MachineSpec::knights_corner().tdp_watts, 200.0);
  EXPECT_GT(sim::MachineSpec::sandy_bridge_ep().tdp_watts, 200.0);
  // The paper's energy argument: comparable power, ~3x the DP flops.
  const auto knc = sim::MachineSpec::knights_corner();
  const auto snb = sim::MachineSpec::sandy_bridge_ep();
  EXPECT_NEAR(knc.tdp_watts / snb.tdp_watts, 1.0, 0.2);
  EXPECT_GT(knc.peak_gflops() / snb.peak_gflops(), 3.0);
}

}  // namespace
}  // namespace xphi::lu
