#include "lu/native_linpack.h"

#include <gtest/gtest.h>

namespace xphi::lu {
namespace {

TEST(NativeLinpack, EndToEndDynamic) {
  NativeLinpackOptions opt;
  opt.functional_nb = 32;
  opt.workers = 3;
  const auto report = run_native_linpack(160, 30000, opt);
  EXPECT_TRUE(report.functional.ok);
  EXPECT_NEAR(report.projected.efficiency, 0.79, 0.03);
  // The functional factor is timed and its panel packs are cache-shared
  // across that stage's update tasks.
  EXPECT_GT(report.functional.factor_seconds, 0.0);
  EXPECT_GT(report.functional_factor_gflops, 0.0);
  EXPECT_GE(report.functional.pack.pack_hits + report.functional.pack.pack_misses,
            1u);
}

TEST(NativeLinpack, StaticSchedulerSelectable) {
  NativeLinpackOptions opt;
  opt.scheduler = Scheduler::kStaticLookahead;
  opt.nb = 240;
  const auto report = run_native_linpack(96, 30000, opt);
  EXPECT_TRUE(report.functional.ok);
  EXPECT_GT(report.projected.gflops, 700.0);
}

TEST(NativeLinpack, TimelineOnRequest) {
  NativeLinpackOptions opt;
  opt.capture_timeline = true;
  const auto report = run_native_linpack(64, 5000, opt);
  EXPECT_FALSE(report.projected.timeline.spans().empty());
}

}  // namespace
}  // namespace xphi::lu
