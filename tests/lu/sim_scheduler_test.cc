#include "lu/sim_scheduler.h"

#include <gtest/gtest.h>

#include "trace/timeline.h"

namespace xphi::lu {
namespace {

sim::KncLuModel model() { return sim::KncLuModel{}; }

NativeLuConfig cfg(std::size_t n, bool timeline = false) {
  NativeLuConfig c;
  c.n = n;
  c.nb = 240;
  c.capture_timeline = timeline;
  return c;
}

ThreadPlan plan_for(std::size_t n, std::size_t nb = 240) {
  return model_tuned_plan(sim::KncLuModel{}, n, nb, 60);
}

// Figure 6 anchor: at N=30K both schedulers reach ~832 GFLOPS (~79%
// efficiency). Calibrated model: accept +/- 3% absolute efficiency.
TEST(SimScheduler, DynamicReaches79PercentAt30K) {
  const auto m = model();
  const auto r = simulate_dynamic_lu(cfg(30000), m, plan_for(30000));
  EXPECT_NEAR(r.efficiency, 0.79, 0.03);
  EXPECT_NEAR(r.gflops, 832.0, 35.0);
}

TEST(SimScheduler, StaticReaches79PercentAt30K) {
  const auto m = model();
  const auto r = simulate_static_lookahead_lu(cfg(30000), m);
  EXPECT_NEAR(r.efficiency, 0.79, 0.03);
}

// Figure 6 shape: dynamic scheduling outperforms static look-ahead below 8K
// and the two converge at large N.
TEST(SimScheduler, DynamicBeatsStaticBelow8K) {
  const auto m = model();
  for (std::size_t n : {2000u, 5000u, 8000u}) {
    const auto dyn = simulate_dynamic_lu(cfg(n), m, plan_for(n));
    const auto sta = simulate_static_lookahead_lu(cfg(n), m);
    EXPECT_GT(dyn.gflops, sta.gflops) << "n=" << n;
  }
}

TEST(SimScheduler, SchemesConvergeAtLargeN) {
  const auto m = model();
  const auto dyn = simulate_dynamic_lu(cfg(30000), m, plan_for(30000));
  const auto sta = simulate_static_lookahead_lu(cfg(30000), m);
  EXPECT_NEAR(dyn.gflops / sta.gflops, 1.0, 0.05);
}

TEST(SimScheduler, PerformanceIncreasesWithN) {
  const auto m = model();
  double prev = 0;
  for (std::size_t n : {1000u, 5000u, 10000u, 20000u, 30000u}) {
    const auto r = simulate_dynamic_lu(cfg(n), m, plan_for(n));
    EXPECT_GT(r.gflops, prev) << "n=" << n;
    prev = r.gflops;
  }
}

TEST(SimScheduler, NativeNeverExceedsDgemmEnvelope) {
  // Linpack efficiency stays below the DGEMM kernel efficiency (Figure 6:
  // the Linpack curves sit under the DGEMM curve).
  const auto m = model();
  const auto r = simulate_dynamic_lu(cfg(30000), m, plan_for(30000));
  const double dgemm_eff = m.gemm_model().gemm_efficiency(
      30000, 30000, 300, 300, false, sim::Precision::kDouble, 60);
  EXPECT_LT(r.efficiency, dgemm_eff);
}

// Figure 7: for the 5K problem the static schedule spends visibly more time
// in panel factorization + barriers than the dynamic one.
TEST(SimScheduler, StaticExposesMoreBarrierAndPanelAt5K) {
  const auto m = model();
  const auto dyn = simulate_dynamic_lu(cfg(5000, true), m, plan_for(5000));
  const auto sta = simulate_static_lookahead_lu(cfg(5000, true), m);
  EXPECT_GT(sta.barrier_seconds, dyn.barrier_seconds);
  EXPECT_LT(dyn.factor_seconds, sta.factor_seconds);
}

TEST(SimScheduler, TimelineCapturedOnRequest) {
  const auto m = model();
  const auto r = simulate_dynamic_lu(cfg(3000, true), m, plan_for(3000));
  EXPECT_FALSE(r.timeline.spans().empty());
  EXPECT_GT(r.timeline.lanes(), 1u);
  // Timeline ends when the factorization does (barring the final barrier).
  EXPECT_LE(r.timeline.end_time(), r.factor_seconds + 1e-9);
  const auto busy = r.timeline.busy_by_kind();
  EXPECT_GT(busy.at(trace::SpanKind::kGemm), 0.0);
  EXPECT_GT(busy.at(trace::SpanKind::kPanelFactor), 0.0);
}

TEST(SimScheduler, MasterOnlyDagAccessBeatsAllThreadContention) {
  // The paper's first many-core extension: only group masters enter the DAG
  // critical section. Modeling every thread contending must cost time.
  auto m = model();
  auto c = cfg(10000);
  const auto fast = simulate_dynamic_lu(c, m, plan_for(10000));
  c.master_only_dag_access = false;
  const auto slow = simulate_dynamic_lu(c, m, plan_for(10000));
  EXPECT_LT(fast.factor_seconds, slow.factor_seconds);
}

TEST(SimScheduler, SuperStagesBeatFixedGroupingAtModerateN) {
  // The paper's second extension: regrouping hides late-stage panels.
  const auto m = model();
  const auto c = cfg(10000);
  const auto geo = simulate_dynamic_lu(c, m, plan_for(10000));
  const auto fixed1 =
      simulate_dynamic_lu(c, m, ThreadPlan::fixed(60, 1, 42));
  EXPECT_LT(geo.factor_seconds, fixed1.factor_seconds);
}

TEST(SimScheduler, SolveTimeSmallFractionOfTotal) {
  const auto m = model();
  const auto r = simulate_dynamic_lu(cfg(20000), m, plan_for(20000));
  EXPECT_LT(r.solve_seconds / r.seconds, 0.05);
}

}  // namespace
}  // namespace xphi::lu
