#include "lu/thread_plan.h"

#include <gtest/gtest.h>

namespace xphi::lu {
namespace {

TEST(ThreadPlan, FixedPlanIsUniform) {
  auto plan = ThreadPlan::fixed(60, 4, 100);
  EXPECT_EQ(plan.group_cores_at(0), 4);
  EXPECT_EQ(plan.group_cores_at(99), 4);
  EXPECT_EQ(plan.groups_at(0), 15);
}

TEST(ThreadPlan, GeometricStartsWithSingleCoreGroups) {
  auto plan = ThreadPlan::geometric(60, 125);
  EXPECT_EQ(plan.group_cores_at(0), 1);
  EXPECT_EQ(plan.groups_at(0), 60);
}

TEST(ThreadPlan, GeometricGrowsGroupsMonotonically) {
  auto plan = ThreadPlan::geometric(60, 125);
  int prev = 0;
  for (std::size_t s = 0; s < 125; ++s) {
    const int g = plan.group_cores_at(s);
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_GT(plan.group_cores_at(124), 1);
}

TEST(ThreadPlan, GeometricBoundariesAtHalvingPoints) {
  auto plan = ThreadPlan::geometric(60, 128, /*max_group_cores=*/8);
  // With half the panels left (stage 64) groups should be 2 cores wide.
  EXPECT_EQ(plan.group_cores_at(63), 1);
  EXPECT_EQ(plan.group_cores_at(64), 2);
  EXPECT_EQ(plan.group_cores_at(96), 4);
  EXPECT_EQ(plan.group_cores_at(112), 8);
}

TEST(ThreadPlan, GroupCountAtLeastOne) {
  auto plan = ThreadPlan::geometric(4, 100, /*max_group_cores=*/16);
  for (std::size_t s = 0; s < 100; ++s) EXPECT_GE(plan.groups_at(s), 1);
}

TEST(ThreadPlan, SuperStageIndexMatchesBoundaries) {
  auto plan = ThreadPlan::geometric(60, 128, 4);
  EXPECT_EQ(plan.super_stage_index(0), 0u);
  EXPECT_EQ(plan.super_stage_index(64), 1u);
  EXPECT_EQ(plan.super_stage_index(127), 2u);
}

TEST(ThreadPlan, TinyMatrixSinglePlanEntry) {
  auto plan = ThreadPlan::geometric(60, 2);
  EXPECT_GE(plan.super_stages().size(), 1u);
  EXPECT_EQ(plan.super_stages().front().first_stage, 0u);
}

}  // namespace
}  // namespace xphi::lu
