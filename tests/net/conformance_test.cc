// Engine-conformance suite for the event-driven net::World.
//
// The cooperative-scheduler rewrite must be observably identical to the
// thread-per-rank engine it replaced. These tests pin the observable
// surface with seeded random-traffic property scripts (ragged payload
// sizes, tag collisions, self-sends, mixed blocking/nonblocking receives):
// the script is a pure function of its seed, so every rank can compute the
// exact byte-for-byte expectation of what it must receive and in which
// order (FIFO per (src, tag)), and the same script replayed three times
// must produce bitwise-identical payloads and identical
// schedule-independent CommStats.
//
// The collective family is pinned the same way: bcast_auto under the two
// forced dispatch extremes (always-tree vs always-ring) must move
// bit-identical payloads, the dispatched choice must match the crossover
// knob exactly (counted by the tree_collectives/ring_collectives stats),
// and a real distributed HPL factorization must produce bit-identical
// factors, pivots and solution under both families.
//
// Finally, the scale contract: a 1024-rank World completes the traffic
// script with OS threads bounded by hardware concurrency, not O(P).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "hpl/block_cyclic.h"
#include "hpl/distributed.h"
#include "net/world.h"

namespace {

using xphi::net::Comm;
using xphi::net::CommStats;
using xphi::net::Payload;
using xphi::net::ReduceOp;
using xphi::net::Request;
using xphi::net::World;

// --- deterministic script machinery ----------------------------------------

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Bitwise-reproducible payload: element j is a pure function of (tag_seed, j).
Payload scripted_payload(std::uint64_t tag_seed, std::size_t len) {
  Payload p(len);
  std::uint64_t s = tag_seed;
  for (std::size_t j = 0; j < len; ++j)
    p[j] = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  return p;
}

struct SendOp {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t len = 0;
  std::uint64_t val_seed = 0;
  bool nonblocking = false;  // deliver via isend instead of send
};

/// The whole point-to-point script is derived from (seed, ranks, rounds):
/// every rank regenerates it identically, so expectations need no side
/// channel. Ragged lengths (including empty), colliding tags and self-sends
/// are all exercised on purpose.
std::vector<SendOp> make_script(std::uint64_t seed, int ranks, int rounds) {
  static const std::size_t kLens[] = {0, 1, 3, 17, 64, 257, 1024};
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  std::vector<SendOp> script;
  for (int round = 0; round < rounds; ++round) {
    for (int src = 0; src < ranks; ++src) {
      const int nsends = static_cast<int>(splitmix64(s) % 3);
      for (int k = 0; k < nsends; ++k) {
        SendOp op;
        op.src = src;
        op.dst = static_cast<int>(splitmix64(s) % ranks);  // self-sends too
        op.tag = static_cast<int>(splitmix64(s) % 4);      // tag collisions
        op.len = kLens[splitmix64(s) % (sizeof kLens / sizeof kLens[0])];
        op.val_seed = splitmix64(s);
        op.nonblocking = splitmix64(s) % 3 == 0;
        script.push_back(op);
      }
    }
  }
  return script;
}

struct ReplayResult {
  // received[dst] maps (src, tag) -> payloads in delivery order.
  std::vector<std::map<std::pair<int, int>, std::vector<Payload>>> received;
  std::vector<CommStats> stats;
};

/// Replays `script` on a fresh World: every rank performs its sends in
/// script order, barriers, then drains exactly the messages the script
/// promises it — alternating blocking recv and irecv/wait per key to cover
/// both paths. FIFO per (src, tag) makes the drain order deterministic.
ReplayResult replay(const std::vector<SendOp>& script, int ranks) {
  ReplayResult out;
  out.received.resize(static_cast<std::size_t>(ranks));
  World w(ranks);
  w.run([&](Comm& comm) {
    const int me = comm.rank();
    for (const SendOp& op : script) {
      if (op.src != me) continue;
      Payload p = scripted_payload(op.val_seed, op.len);
      if (op.nonblocking) {
        Request r = comm.isend(op.dst, op.tag, std::move(p));
        EXPECT_TRUE(r.test());  // buffered sends complete immediately
      } else {
        comm.send(op.dst, op.tag, std::move(p));
      }
    }
    comm.barrier();
    // Expected inbound count per (src, tag), in script (== FIFO) order.
    std::map<std::pair<int, int>, std::size_t> inbound;
    for (const SendOp& op : script)
      if (op.dst == me) inbound[{op.src, op.tag}] += 1;
    auto& mine = out.received[static_cast<std::size_t>(me)];
    bool use_irecv = false;
    for (const auto& [key, count] : inbound) {
      for (std::size_t i = 0; i < count; ++i) {
        if (use_irecv) {
          Request r = comm.irecv(key.first, key.second);
          mine[key].push_back(r.take());
        } else {
          mine[key].push_back(comm.recv(key.first, key.second));
        }
        use_irecv = !use_irecv;
      }
    }
  });
  for (int r = 0; r < ranks; ++r) out.stats.push_back(w.stats(r));
  return out;
}

/// The schedule-independent CommStats fields (wait time, mailbox high-water
/// and soft-cap counts legitimately depend on interleaving; the traffic
/// totals and dispatch counts must not).
std::vector<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       std::size_t, std::size_t>>
traffic_fingerprint(const std::vector<CommStats>& stats) {
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                         std::size_t, std::size_t>>
      fp;
  for (const CommStats& s : stats)
    fp.emplace_back(s.messages_sent, s.messages_received, s.bytes_sent,
                    s.bytes_received, s.tree_collectives, s.ring_collectives);
  return fp;
}

TEST(Conformance, SeededTrafficDeliversExactBitsInFifoOrder) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const int ranks = 6;
    const auto script = make_script(seed, ranks, 5);
    ASSERT_FALSE(script.empty());
    const ReplayResult run = replay(script, ranks);
    // Reference: group the script by (dst, src, tag) in send order.
    std::vector<std::map<std::pair<int, int>, std::vector<Payload>>> expect(
        static_cast<std::size_t>(ranks));
    for (const SendOp& op : script)
      expect[static_cast<std::size_t>(op.dst)][{op.src, op.tag}].push_back(
          scripted_payload(op.val_seed, op.len));
    for (int r = 0; r < ranks; ++r) {
      const auto& got = run.received[static_cast<std::size_t>(r)];
      const auto& want = expect[static_cast<std::size_t>(r)];
      ASSERT_EQ(got.size(), want.size()) << "rank " << r << " seed " << seed;
      for (const auto& [key, payloads] : want) {
        const auto it = got.find(key);
        ASSERT_NE(it, got.end());
        ASSERT_EQ(it->second.size(), payloads.size());
        for (std::size_t i = 0; i < payloads.size(); ++i)
          EXPECT_EQ(it->second[i], payloads[i])  // bitwise: doubles compare
              << "rank " << r << " (src=" << key.first
              << ", tag=" << key.second << ") message " << i;
      }
    }
  }
}

TEST(Conformance, ThreeRunsPerSeedAreBitwiseAndStatsDeterministic) {
  for (const std::uint64_t seed : {3ull, 99ull}) {
    const int ranks = 5;
    const auto script = make_script(seed, ranks, 4);
    const ReplayResult a = replay(script, ranks);
    const ReplayResult b = replay(script, ranks);
    const ReplayResult c = replay(script, ranks);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.received, c.received);
    const auto fa = traffic_fingerprint(a.stats);
    EXPECT_EQ(fa, traffic_fingerprint(b.stats));
    EXPECT_EQ(fa, traffic_fingerprint(c.stats));
    // Conservation: every sent message and byte is drained by the script.
    std::size_t sent = 0, received = 0, bsent = 0, breceived = 0;
    for (const CommStats& s : a.stats) {
      sent += s.messages_sent;
      received += s.messages_received;
      bsent += s.bytes_sent;
      breceived += s.bytes_received;
    }
    EXPECT_EQ(sent, received);
    EXPECT_EQ(bsent, breceived);
  }
}

// --- collective families ----------------------------------------------------

constexpr std::size_t kAlwaysTree = static_cast<std::size_t>(-1);

/// Runs a scripted mix of collectives (bcast_auto at several sizes spanning
/// any crossover, tree reduce, ring allreduce/reduce_scatter) under the
/// given crossover knob and returns every rank's bcast results flattened,
/// plus the World's final stats.
struct CollectiveRun {
  std::vector<Payload> bcast_results;  // [rank * sizes + i]
  std::vector<Payload> allreduce_results;
  std::vector<CommStats> stats;
};

CollectiveRun run_collectives(int ranks, std::uint64_t seed,
                              std::size_t crossover) {
  static const std::size_t kSizes[] = {1, 16, 256, 1024, 1025, 4096, 16384};
  const std::size_t nsizes = sizeof kSizes / sizeof kSizes[0];
  CollectiveRun out;
  out.bcast_results.resize(static_cast<std::size_t>(ranks) * nsizes);
  out.allreduce_results.resize(static_cast<std::size_t>(ranks));
  World w(ranks);
  w.set_collective_crossover_doubles(crossover);
  std::vector<int> everyone(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) everyone[static_cast<std::size_t>(r)] = r;
  w.run([&](Comm& comm) {
    const int me = comm.rank();
    for (std::size_t i = 0; i < nsizes; ++i) {
      const int root = static_cast<int>((seed + i) % ranks);
      Payload data;
      if (me == root) data = scripted_payload(seed ^ (i * 1009), kSizes[i]);
      Payload got = comm.bcast_auto(root, everyone, std::move(data),
                                    static_cast<int>(10 + i), kSizes[i]);
      out.bcast_results[static_cast<std::size_t>(me) * nsizes + i] =
          std::move(got);
    }
    comm.barrier();
    Payload mine = scripted_payload(seed ^ (0xabcdull + me), 600);
    Payload summed = comm.allreduce(everyone, std::move(mine), 50);
    Payload reduced = comm.reduce(0, everyone,
                                  scripted_payload(seed ^ (0x77ull + me), 40),
                                  51, ReduceOp::kMax);
    if (me == 0) {
      // Tree max-reduce is exact: cross-check against the direct maximum.
      Payload want = scripted_payload(seed ^ 0x77ull, 40);
      for (int r = 1; r < ranks; ++r) {
        const Payload other = scripted_payload(seed ^ (0x77ull + r), 40);
        for (std::size_t j = 0; j < want.size(); ++j)
          want[j] = std::max(want[j], other[j]);
      }
      EXPECT_EQ(reduced, want);
    }
    out.allreduce_results[static_cast<std::size_t>(me)] = std::move(summed);
  });
  for (int r = 0; r < ranks; ++r) out.stats.push_back(w.stats(r));
  return out;
}

TEST(Conformance, BothCollectiveFamiliesMoveIdenticalBits) {
  for (const int ranks : {2, 5, 8}) {
    const CollectiveRun tree = run_collectives(ranks, 11, kAlwaysTree);
    const CollectiveRun ring = run_collectives(ranks, 11, 0);
    const CollectiveRun mixed = run_collectives(ranks, 11, 1024);
    EXPECT_EQ(tree.bcast_results, ring.bcast_results) << ranks;
    EXPECT_EQ(tree.bcast_results, mixed.bcast_results) << ranks;
    // allreduce keeps its fixed ring schedule, so kSum bits match too.
    EXPECT_EQ(tree.allreduce_results, ring.allreduce_results);
    // Every rank agrees with every other on the broadcast payloads.
    const std::size_t nsizes = tree.bcast_results.size() /
                               static_cast<std::size_t>(ranks);
    for (int r = 1; r < ranks; ++r)
      for (std::size_t i = 0; i < nsizes; ++i)
        EXPECT_EQ(tree.bcast_results[static_cast<std::size_t>(r) * nsizes + i],
                  tree.bcast_results[i]);
  }
}

TEST(Conformance, DispatchCountsMatchTheCrossoverKnob) {
  // 7 bcast_auto calls per rank at sizes {1,16,256,1024,1025,4096,16384}.
  // crossover=1024 sends the last three over the ring (size > 1024) for
  // groups >= 3; a 2-rank group always takes the tree.
  const CollectiveRun mixed = run_collectives(6, 21, 1024);
  std::size_t tree_calls = 0, ring_calls = 0;
  for (const CommStats& s : mixed.stats) {
    tree_calls += s.tree_collectives;
    ring_calls += s.ring_collectives;
  }
  EXPECT_EQ(tree_calls, 6u * 4u);  // sizes 1, 16, 256, 1024
  EXPECT_EQ(ring_calls, 6u * 3u);  // sizes 1025, 4096, 16384

  const CollectiveRun pair = run_collectives(2, 21, 0);
  std::size_t pair_ring = 0, pair_tree = 0;
  for (const CommStats& s : pair.stats) {
    pair_ring += s.ring_collectives;
    pair_tree += s.tree_collectives;
  }
  EXPECT_EQ(pair_ring, 0u);  // a 2-rank ring cannot pipeline: always tree
  EXPECT_EQ(pair_tree, 2u * 7u);

  const CollectiveRun all_tree = run_collectives(6, 21, kAlwaysTree);
  for (const CommStats& s : all_tree.stats) EXPECT_EQ(s.ring_collectives, 0u);
}

TEST(Conformance, HplFactorBitsAreIdenticalUnderBothFamilies) {
  using xphi::hpl::DistributedHplOptions;
  using xphi::hpl::Grid;
  for (const Grid grid : {Grid{2, 3}, Grid{3, 2}}) {
    DistributedHplOptions tree_opts;
    tree_opts.net_crossover_doubles = kAlwaysTree;
    DistributedHplOptions ring_opts;
    ring_opts.net_crossover_doubles = 1;  // every multi-rank bcast rings
    ring_opts.net_ring_segment = 128;
    const auto a = xphi::hpl::run_distributed_hpl(72, 12, grid, 7, tree_opts);
    const auto b = xphi::hpl::run_distributed_hpl(72, 12, grid, 7, ring_opts);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.ipiv, b.ipiv);
    EXPECT_EQ(a.x, b.x);  // bitwise: vector<double> equality
    ASSERT_EQ(a.factored.rows(), b.factored.rows());
    for (std::size_t r = 0; r < a.factored.rows(); ++r)
      for (std::size_t c = 0; c < a.factored.cols(); ++c)
        ASSERT_EQ(a.factored(r, c), b.factored(r, c))
            << "factor mismatch at (" << r << "," << c << ")";
    // And the ring run actually used the ring somewhere.
    std::size_t rings = 0;
    for (const CommStats& s : b.comm_stats) rings += s.ring_collectives;
    EXPECT_GT(rings, 0u);
  }
}

// --- scale ------------------------------------------------------------------

int os_thread_count() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

TEST(Conformance, World1024RanksRunsOnABoundedWorkerPool) {
  const int ranks = 1024;
  const int before = os_thread_count();
  ASSERT_GT(before, 0);
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  World w(ranks);
  EXPECT_LE(w.workers(), hw);
  std::vector<int> everyone(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) everyone[static_cast<std::size_t>(r)] = r;
  std::atomic<int> peak_threads{0};
  std::atomic<int> done{0};
  w.run([&](Comm& comm) {
    const int me = comm.rank();
    // Neighbor exchange around the full ring (every rank both sends and
    // blocks on a receive, so 1024 coroutines park and resume).
    comm.send((me + 1) % ranks, 3, {static_cast<double>(me), 0.5});
    const Payload from_left = comm.recv((me + ranks - 1) % ranks, 3);
    ASSERT_EQ(from_left.size(), 2u);
    EXPECT_EQ(from_left[0], static_cast<double>((me + ranks - 1) % ranks));
    // A size-adaptive broadcast across all 1024 ranks (ring side).
    Payload data;
    if (me == 0) data = scripted_payload(0x5ca1eull, 2048);
    const Payload got = comm.bcast_auto(0, everyone, std::move(data), 9, 2048);
    ASSERT_EQ(got.size(), 2048u);
    EXPECT_EQ(got[0], scripted_payload(0x5ca1eull, 2048)[0]);
    if (me == 0) {
      const int now = os_thread_count();
      int prev = peak_threads.load();
      while (now > prev && !peak_threads.compare_exchange_weak(prev, now)) {
      }
    }
    comm.barrier();
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), ranks);
  // The acceptance bound: OS threads stay <= hardware concurrency extras,
  // never O(ranks).
  EXPECT_LE(peak_threads.load(), before + hw);
  EXPECT_LE(peak_threads.load(), before + w.workers() - 1 + 1);
  // Conservation across the full fleet.
  std::size_t sent = 0, received = 0;
  for (int r = 0; r < ranks; ++r) {
    const CommStats s = w.stats(r);
    sent += s.messages_sent;
    received += s.messages_received;
  }
  EXPECT_EQ(sent, received);
}

}  // namespace
