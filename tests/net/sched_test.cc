// Scheduler-level tests for net::Sched and the World behaviors that only
// exist because of it: bounded OS threads regardless of rank count,
// fairness under a spinning (polling) rank, park/wake correctness across
// the lost-wakeup race, deadline firing, and deadlock detection turning a
// provably wedged World into per-rank diagnostics instead of a hang.
#include "net/sched.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/world.h"

namespace {

using xphi::net::Comm;
using xphi::net::Payload;
using xphi::net::Request;
using xphi::net::Sched;
using xphi::net::World;

/// Current OS thread count of this process (/proc/self/status Threads:).
int os_thread_count() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

int hardware_threads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

TEST(Sched, WorkerPoolIsBoundedByHardwareNotTasks) {
  Sched small(2, {});
  EXPECT_LE(small.workers(), 2);
  Sched big(4096, {});
  EXPECT_LE(big.workers(), hardware_threads());
  EXPECT_GE(big.workers(), 1);
  // An explicit worker request is still capped by the task count.
  Sched::Options eight;
  eight.workers = 8;
  Sched capped(3, eight);
  EXPECT_EQ(capped.workers(), 3);
}

TEST(Sched, OsThreadCountDuringRunMatchesWorkers) {
  const int before = os_thread_count();
  ASSERT_GT(before, 0);
  Sched s(64, {});
  std::atomic<int> peak{0};
  s.run([&](int) {
    const int now = os_thread_count();
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
  });
  // 64 tasks must not mean 64 threads: only the workers_ - 1 extras exist.
  EXPECT_LE(peak.load(), before + s.workers() - 1);
}

TEST(Sched, RunsEveryTaskExactlyOnceAndFifoWithOneWorker) {
  Sched::Options one;
  one.workers = 1;
  Sched s(16, one);
  std::vector<int> order;
  s.run([&](int i) { order.push_back(i); });  // single worker: no race
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Sched, ParkIsWokenBySignal) {
  Sched s(2, {});
  std::atomic<bool> flag{false};
  std::atomic<int> wakes{0};
  s.run([&](int i) {
    if (i == 0) {
      while (!flag.load()) {
        const Sched::Wake why = s.park(0);
        wakes.fetch_add(1);
        ASSERT_EQ(why, Sched::Wake::kSignal);
      }
    } else {
      flag.store(true);
      s.wake(0);
    }
  });
  EXPECT_TRUE(flag.load());
  EXPECT_GE(wakes.load(), 1);
}

TEST(Sched, WakeBeforeParkIsLatchedNotLost) {
  // Task 1 wakes task 0 before task 0 ever parks (guaranteed with a single
  // worker and task 1 parked first): the latched wake must make task 0's
  // park return immediately instead of deadlocking.
  Sched::Options one;
  one.workers = 1;
  Sched s(2, one);
  s.run([&](int i) {
    if (i == 0) {
      s.yield();  // let task 1 run and issue the early wake
      EXPECT_EQ(s.park(0), Sched::Wake::kSignal);
    } else {
      s.wake(0);
    }
  });
}

TEST(Sched, ParkDeadlineFires) {
  Sched s(1, {});
  s.run([&](int) {
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(s.park(0.02), Sched::Wake::kTimeout);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(elapsed, 0.015);
  });
}

TEST(Sched, DeadlockIsDetectedAndReportedToEveryParkedTask) {
  Sched s(3, {});
  std::atomic<int> deadlocked{0};
  s.run([&](int) {
    if (s.park(0) == Sched::Wake::kDeadlock) deadlocked.fetch_add(1);
  });
  // No task can ever wake another here: all three must be diagnosed.
  EXPECT_EQ(deadlocked.load(), 3);
}

TEST(Sched, YieldLetsPeersRunUnderASingleWorker) {
  Sched::Options one;
  one.workers = 1;
  Sched s(2, one);
  std::atomic<bool> flag{false};
  std::atomic<int> spins{0};
  s.run([&](int i) {
    if (i == 0) {
      while (!flag.load()) {
        spins.fetch_add(1);
        s.yield();  // without this the single worker would never reach task 1
      }
    } else {
      flag.store(true);
    }
  });
  EXPECT_TRUE(flag.load());
  EXPECT_GE(spins.load(), 1);
}

TEST(Sched, TaskExceptionsAreCapturedPerTask) {
  Sched s(3, {});
  s.run([&](int i) {
    if (i == 1) throw std::runtime_error("task 1 failed");
  });
  ASSERT_EQ(s.errors().size(), 3u);
  EXPECT_EQ(s.errors()[0], nullptr);
  EXPECT_EQ(s.errors()[2], nullptr);
  ASSERT_NE(s.errors()[1], nullptr);
  try {
    std::rethrow_exception(s.errors()[1]);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1 failed");
  }
}

TEST(Sched, CurrentTaskTracksNestedSchedulers) {
  EXPECT_EQ(Sched::current_task(), -1);  // the driver thread is not a task
  Sched outer(2, {});
  std::mutex mu;
  std::vector<int> inner_seen;
  outer.run([&](int i) {
    EXPECT_EQ(Sched::current_task(), i);
    if (i == 0) {
      // A task may drive a whole nested scheduler (a World inside a rank).
      Sched inner(2, {});
      inner.run([&](int j) {
        EXPECT_EQ(Sched::current_task(), j);
        std::lock_guard lk(mu);
        inner_seen.push_back(j);
      });
      // The worker slot must be restored: we are task 0 of `outer` again.
      EXPECT_EQ(Sched::current_task(), 0);
    }
  });
  EXPECT_EQ(inner_seen.size(), 2u);
  EXPECT_EQ(Sched::current_task(), -1);
}

TEST(Sched, CoroutineStacksSurviveRealFrames) {
  Sched s(8, {});  // default 1 MiB stacks
  std::atomic<int> done{0};
  s.run([&](int i) {
    volatile char frame[200 * 1024];  // deep-ish frame on the coroutine stack
    std::memset(const_cast<char*>(frame), static_cast<char>(i), sizeof frame);
    if (frame[sizeof frame - 1] == static_cast<char>(i)) done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 8);
}

// --- World-level behaviors owed to the scheduler ---------------------------

TEST(SchedWorld, WorkerCountIsBoundedAndOverridable) {
  World w(512);
  EXPECT_LE(w.workers(), hardware_threads());
  w.set_workers(2);
  EXPECT_EQ(w.workers(), 2);
  World tiny(1);
  EXPECT_EQ(tiny.workers(), 1);
}

TEST(SchedWorld, SpinningRankCannotStarveItsPeer) {
  // Rank 0 polls Request::test in a tight loop; rank 1 is the rank that
  // must run for the poll ever to succeed. A failed test() yields, so this
  // terminates even when one worker serves both ranks.
  World w(2);
  w.set_workers(1);
  std::atomic<int> spins{0};
  w.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.irecv(1, 5);
      while (!r.test()) spins.fetch_add(1);
      const Payload got = r.take();
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42.0);
    } else {
      for (int i = 0; i < 100; ++i) comm.send(0, 99, {});  // stay busy
      comm.send(0, 5, {42.0});
    }
  });
  EXPECT_GE(spins.load(), 1);
}

TEST(SchedWorld, DeadlockedRecvThrowsDiagnosticNamingRankAndTag) {
  // No timeout armed, and the only possible sender exits immediately: the
  // old engine hung forever here; the scheduler proves the wedge and the
  // blocked rank throws a diagnostic naming what it was waiting on.
  World w(2);
  try {
    w.run([](Comm& comm) {
      if (comm.rank() == 0) comm.recv(1, 9);
    });
    FAIL() << "expected a deadlock diagnostic";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("src=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag=9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
  }
}

TEST(SchedWorld, DeadlockedBarrierThrowsDiagnostic) {
  World w(3);
  try {
    w.run([](Comm& comm) {
      if (comm.rank() != 2) comm.barrier();  // rank 2 never arrives
    });
    FAIL() << "expected a barrier deadlock diagnostic";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("barrier"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 of 3"), std::string::npos) << msg;
  }
}

TEST(SchedWorld, RankThrowingMidCollectiveDoesNotWedgeSiblings) {
  // Rank 1 is an interior node of the binomial bcast tree (it must forward
  // to rank 3); it dies before participating. Rank 3 blocks on a message
  // that can never come — with no timeout armed. The run must complete via
  // deadlock detection and surface rank 1's original error (first by rank).
  World w(4);
  std::vector<int> everyone{0, 1, 2, 3};
  try {
    w.run([&](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("card died mid-factor");
      comm.bcast(0, everyone, comm.rank() == 0 ? Payload{1.0, 2.0} : Payload{},
                 7);
    });
    FAIL() << "expected the dead rank's error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "card died mid-factor");
  }
}

TEST(SchedWorld, RecvTimeoutStillBeatsDeadlockDetectionWhenArmed) {
  // With a timeout set, the blocked rank reports the familiar timeout
  // diagnostic (not the deadlock one) — source compatibility with the old
  // engine's contract.
  World w(2);
  w.set_recv_timeout(0.05);
  try {
    w.run([](Comm& comm) {
      if (comm.rank() == 0) comm.recv(1, 4);
    });
    FAIL() << "expected a timeout diagnostic";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("timed out"), std::string::npos) << msg;
    EXPECT_NE(msg.find("src=1"), std::string::npos) << msg;
  }
}

}  // namespace
