#include "net/world.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace xphi::net {
namespace {

TEST(World, PointToPointDelivers) {
  World w(2);
  double got = 0;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      const auto msg = c.recv(0, 7);
      got = std::accumulate(msg.begin(), msg.end(), 0.0);
    }
  });
  EXPECT_EQ(got, 6.0);
}

TEST(World, TagMatchingSeparatesStreams) {
  World w(2);
  Payload a, b;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 2, {2.0});
      c.send(1, 1, {1.0});
    } else {
      a = c.recv(0, 1);  // receives tag 1 even though tag 2 arrived first
      b = c.recv(0, 2);
    }
  });
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(b[0], 2.0);
}

TEST(World, FifoWithinSameSrcTag) {
  World w(2);
  std::vector<double> order;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, 0, {static_cast<double>(i)});
    } else {
      for (int i = 0; i < 5; ++i) order.push_back(c.recv(0, 0)[0]);
    }
  });
  EXPECT_EQ(order, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(World, PairwiseExchangeNoDeadlock) {
  World w(2);
  double sums[2] = {0, 0};
  w.run([&](Comm& c) {
    const int partner = 1 - c.rank();
    c.send(partner, 0, {static_cast<double>(c.rank() + 1)});
    sums[c.rank()] = c.recv(partner, 0)[0];
  });
  EXPECT_EQ(sums[0], 2.0);
  EXPECT_EQ(sums[1], 1.0);
}

TEST(World, BroadcastFromRankZero) {
  for (int ranks : {2, 3, 4, 5, 7}) {
    World w(ranks);
    std::vector<double> got(ranks, 0);
    std::vector<int> group(ranks);
    for (int i = 0; i < ranks; ++i) group[i] = i;
    w.run([&](Comm& c) {
      Payload data;
      if (c.rank() == 0) data = {42.0, 43.0};
      data = c.bcast(0, group, std::move(data), 5);
      got[c.rank()] = data[0] + data[1];
    });
    for (int r = 0; r < ranks; ++r) EXPECT_EQ(got[r], 85.0) << ranks << " ranks";
  }
}

TEST(World, BroadcastFromNonzeroRoot) {
  World w(4);
  std::vector<int> group = {0, 1, 2, 3};
  std::vector<double> got(4, 0);
  w.run([&](Comm& c) {
    Payload data;
    if (c.rank() == 2) data = {9.0};
    data = c.bcast(2, group, std::move(data), 3);
    got[c.rank()] = data[0];
  });
  for (double v : got) EXPECT_EQ(v, 9.0);
}

TEST(World, BroadcastWithinSubgroup) {
  World w(4);
  // Broadcast only among ranks {1, 3}; others must stay untouched.
  std::vector<double> got(4, -1);
  w.run([&](Comm& c) {
    if (c.rank() == 1 || c.rank() == 3) {
      Payload data;
      if (c.rank() == 3) data = {5.0};
      data = c.bcast(3, {1, 3}, std::move(data), 9);
      got[c.rank()] = data[0];
    }
  });
  EXPECT_EQ(got[1], 5.0);
  EXPECT_EQ(got[3], 5.0);
  EXPECT_EQ(got[0], -1.0);
  EXPECT_EQ(got[2], -1.0);
}

TEST(World, BarrierSynchronizes) {
  World w(3);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  w.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() != 3) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(World, EightRankAllToAll) {
  World w(8);
  std::vector<double> sums(8, 0);
  w.run([&](Comm& c) {
    for (int dst = 0; dst < 8; ++dst)
      if (dst != c.rank())
        c.send(dst, 0, {static_cast<double>(c.rank())});
    double s = 0;
    for (int src = 0; src < 8; ++src)
      if (src != c.rank()) s += c.recv(src, 0)[0];
    sums[c.rank()] = s;
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(sums[r], 28.0 - r);
}

TEST(World, SingleRankWorld) {
  World w(1);
  int visits = 0;
  w.run([&](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    auto d = c.bcast(0, {0}, {1.5}, 0);
    EXPECT_EQ(d[0], 1.5);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

}  // namespace
}  // namespace xphi::net
