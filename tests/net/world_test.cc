#include "net/world.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>

namespace xphi::net {
namespace {

TEST(World, PointToPointDelivers) {
  World w(2);
  double got = 0;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      const auto msg = c.recv(0, 7);
      got = std::accumulate(msg.begin(), msg.end(), 0.0);
    }
  });
  EXPECT_EQ(got, 6.0);
}

TEST(World, TagMatchingSeparatesStreams) {
  World w(2);
  Payload a, b;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 2, {2.0});
      c.send(1, 1, {1.0});
    } else {
      a = c.recv(0, 1);  // receives tag 1 even though tag 2 arrived first
      b = c.recv(0, 2);
    }
  });
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(b[0], 2.0);
}

TEST(World, FifoWithinSameSrcTag) {
  World w(2);
  std::vector<double> order;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, 0, {static_cast<double>(i)});
    } else {
      for (int i = 0; i < 5; ++i) order.push_back(c.recv(0, 0)[0]);
    }
  });
  EXPECT_EQ(order, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(World, PairwiseExchangeNoDeadlock) {
  World w(2);
  double sums[2] = {0, 0};
  w.run([&](Comm& c) {
    const int partner = 1 - c.rank();
    c.send(partner, 0, {static_cast<double>(c.rank() + 1)});
    sums[c.rank()] = c.recv(partner, 0)[0];
  });
  EXPECT_EQ(sums[0], 2.0);
  EXPECT_EQ(sums[1], 1.0);
}

TEST(World, BroadcastFromRankZero) {
  for (int ranks : {2, 3, 4, 5, 7}) {
    World w(ranks);
    std::vector<double> got(ranks, 0);
    std::vector<int> group(ranks);
    for (int i = 0; i < ranks; ++i) group[i] = i;
    w.run([&](Comm& c) {
      Payload data;
      if (c.rank() == 0) data = {42.0, 43.0};
      data = c.bcast(0, group, std::move(data), 5);
      got[c.rank()] = data[0] + data[1];
    });
    for (int r = 0; r < ranks; ++r) EXPECT_EQ(got[r], 85.0) << ranks << " ranks";
  }
}

TEST(World, BroadcastFromNonzeroRoot) {
  World w(4);
  std::vector<int> group = {0, 1, 2, 3};
  std::vector<double> got(4, 0);
  w.run([&](Comm& c) {
    Payload data;
    if (c.rank() == 2) data = {9.0};
    data = c.bcast(2, group, std::move(data), 3);
    got[c.rank()] = data[0];
  });
  for (double v : got) EXPECT_EQ(v, 9.0);
}

TEST(World, BroadcastWithinSubgroup) {
  World w(4);
  // Broadcast only among ranks {1, 3}; others must stay untouched.
  std::vector<double> got(4, -1);
  w.run([&](Comm& c) {
    if (c.rank() == 1 || c.rank() == 3) {
      Payload data;
      if (c.rank() == 3) data = {5.0};
      data = c.bcast(3, {1, 3}, std::move(data), 9);
      got[c.rank()] = data[0];
    }
  });
  EXPECT_EQ(got[1], 5.0);
  EXPECT_EQ(got[3], 5.0);
  EXPECT_EQ(got[0], -1.0);
  EXPECT_EQ(got[2], -1.0);
}

TEST(World, BarrierSynchronizes) {
  World w(3);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  w.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() != 3) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(World, EightRankAllToAll) {
  World w(8);
  std::vector<double> sums(8, 0);
  w.run([&](Comm& c) {
    for (int dst = 0; dst < 8; ++dst)
      if (dst != c.rank())
        c.send(dst, 0, {static_cast<double>(c.rank())});
    double s = 0;
    for (int src = 0; src < 8; ++src)
      if (src != c.rank()) s += c.recv(src, 0)[0];
    sums[c.rank()] = s;
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(sums[r], 28.0 - r);
}

TEST(World, SingleRankWorld) {
  World w(1);
  int visits = 0;
  w.run([&](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    auto d = c.bcast(0, {0}, {1.5}, 0);
    EXPECT_EQ(d[0], 1.5);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

// ---------------------------------------------------------------------------
// Nonblocking requests
// ---------------------------------------------------------------------------

TEST(World, IsendCompletesImmediately) {
  World w(2);
  Payload got;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      Request r = c.isend(1, 4, {7.0, 8.0});
      EXPECT_TRUE(r.valid());
      EXPECT_TRUE(r.test());  // buffered sends complete instantly
      r.wait();
    } else {
      got = c.irecv(0, 4).take();
    }
  });
  EXPECT_EQ(got, (Payload{7.0, 8.0}));
}

TEST(World, IrecvTestIsNonblocking) {
  World w(2);
  bool early_test = true;
  Payload got;
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      const auto ready = c.recv(1, 1);  // wait until rank 1 probed
      (void)ready;
      c.send(1, 2, {3.0});
    } else {
      Request r = c.irecv(0, 2);
      early_test = r.test();  // nothing sent yet -> must be false, not block
      c.send(0, 1, {1.0});
      got = r.take();
    }
  });
  EXPECT_FALSE(early_test);
  EXPECT_EQ(got, (Payload{3.0}));
}

TEST(World, IsendIrecvOrderingUnderRandomInterleavings) {
  // FIFO per (src, tag) must hold however rank progress interleaves; each
  // round randomizes per-rank delays to shake out ordering races (run under
  // TSan via scripts/run_tsan.sh).
  std::mt19937 gen(1234);
  for (int round = 0; round < 8; ++round) {
    const int ranks = 4;
    World w(ranks);
    std::vector<int> delay_us(ranks);
    for (auto& d : delay_us) d = static_cast<int>(gen() % 200);
    std::vector<std::vector<double>> seen(ranks);
    w.run([&](Comm& c) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us[c.rank()]));
      // Every rank isends a numbered stream to every other rank...
      for (int dst = 0; dst < ranks; ++dst) {
        if (dst == c.rank()) continue;
        for (int i = 0; i < 5; ++i)
          c.isend(dst, 3, {c.rank() * 100.0 + i});
      }
      // ...and irecvs them; per-source order must be preserved.
      std::vector<Request> reqs;
      for (int src = 0; src < ranks; ++src) {
        if (src == c.rank()) continue;
        for (int i = 0; i < 5; ++i) reqs.push_back(c.irecv(src, 3));
      }
      for (auto& r : reqs) seen[c.rank()].push_back(r.take()[0]);
    });
    for (int r = 0; r < ranks; ++r) {
      std::size_t pos = 0;
      for (int src = 0; src < ranks; ++src) {
        if (src == r) continue;
        for (int i = 0; i < 5; ++i)
          EXPECT_EQ(seen[r][pos++], src * 100.0 + i)
              << "rank " << r << " src " << src << " msg " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

TEST(World, RingBcastMatchesBinomialAcrossRaggedSegments) {
  // Payload-equality of the segmented ring vs the binomial tree, over rank
  // counts, roots, payload lengths that don't divide the segment, and
  // segment sizes including 0 (single chunk) and > payload.
  for (int ranks : {2, 3, 5, 8}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{64}, std::size_t{129}}) {
      for (std::size_t seg : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{32}, std::size_t{1000}}) {
        const int root = static_cast<int>(len) % ranks;
        Payload reference(len);
        for (std::size_t i = 0; i < len; ++i)
          reference[i] = std::sin(static_cast<double>(i) + ranks);
        std::vector<int> group(ranks);
        for (int i = 0; i < ranks; ++i) group[i] = i;
        World w(ranks);
        std::vector<Payload> ring(ranks), tree(ranks);
        w.run([&](Comm& c) {
          Payload mine = c.rank() == root ? reference : Payload{};
          ring[c.rank()] = c.ring_bcast(root, group, mine, 11, seg);
          tree[c.rank()] = c.bcast(root, group, std::move(mine), 12);
        });
        for (int r = 0; r < ranks; ++r) {
          EXPECT_EQ(ring[r], reference)
              << "ring ranks=" << ranks << " len=" << len << " seg=" << seg;
          EXPECT_EQ(ring[r], tree[r])
              << "vs tree ranks=" << ranks << " len=" << len << " seg=" << seg;
        }
      }
    }
  }
}

TEST(World, RingBcastWithinSubgroup) {
  World w(5);
  const Payload data{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<Payload> got(5);
  w.run([&](Comm& c) {
    if (c.rank() % 2 == 0) {  // subgroup {0, 2, 4}, root 4
      Payload mine = c.rank() == 4 ? data : Payload{};
      got[c.rank()] = c.ring_bcast(4, {0, 2, 4}, std::move(mine), 2, 2);
    }
  });
  EXPECT_EQ(got[0], data);
  EXPECT_EQ(got[2], data);
  EXPECT_EQ(got[4], data);
  EXPECT_TRUE(got[1].empty());
  EXPECT_TRUE(got[3].empty());
}

TEST(World, AllreduceSumMatchesSerialReduction) {
  for (int ranks : {1, 2, 3, 4, 7}) {
    for (std::size_t len : {std::size_t{1}, std::size_t{3}, std::size_t{10},
                            std::size_t{65}}) {
      // Serial oracle: sum of every rank's contribution, in rank order.
      std::vector<Payload> inputs(ranks, Payload(len));
      Payload expected(len, 0.0);
      for (int r = 0; r < ranks; ++r)
        for (std::size_t i = 0; i < len; ++i) {
          inputs[r][i] = std::cos(r * 31.0 + static_cast<double>(i));
          expected[i] += inputs[r][i];
        }
      std::vector<int> group(ranks);
      for (int i = 0; i < ranks; ++i) group[i] = i;
      World w(ranks);
      std::vector<Payload> got(ranks);
      w.run([&](Comm& c) {
        got[c.rank()] = c.allreduce(group, inputs[c.rank()], 6);
      });
      for (int r = 0; r < ranks; ++r) {
        ASSERT_EQ(got[r].size(), len);
        for (std::size_t i = 0; i < len; ++i)
          EXPECT_NEAR(got[r][i], expected[i], 1e-12)
              << "ranks=" << ranks << " len=" << len << " r=" << r;
      }
    }
  }
}

TEST(World, AllreduceMax) {
  World w(4);
  std::vector<Payload> got(4);
  w.run([&](Comm& c) {
    Payload mine = {static_cast<double>(c.rank()), -c.rank() * 2.0, 1.0};
    got[c.rank()] = c.allreduce({0, 1, 2, 3}, std::move(mine), 8, ReduceOp::kMax);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(got[r], (Payload{3.0, 0.0, 1.0}));
}

TEST(World, ReduceScatterChunksByGroupPosition) {
  // n = 7 over 3 ranks: chunks are [0,3), [3,5), [5,7) (near-equal split);
  // rank at group position i gets the reduced chunk i.
  World w(3);
  std::vector<Payload> got(3);
  w.run([&](Comm& c) {
    Payload mine(7);
    for (std::size_t i = 0; i < 7; ++i)
      mine[i] = static_cast<double>((c.rank() + 1) * (i + 1));
    got[c.rank()] = c.reduce_scatter({0, 1, 2}, std::move(mine), 13);
  });
  // Element-wise sum is 6*(i+1).
  EXPECT_EQ(got[0], (Payload{6.0, 12.0, 18.0}));
  EXPECT_EQ(got[1], (Payload{24.0, 30.0}));
  EXPECT_EQ(got[2], (Payload{36.0, 42.0}));
}

// ---------------------------------------------------------------------------
// Timeout, mailbox accounting, stats
// ---------------------------------------------------------------------------

TEST(World, RecvTimeoutThrowsDiagnosticInsteadOfDeadlocking) {
  World w(2);
  w.set_recv_timeout(0.05);
  std::string message;
  try {
    w.run([&](Comm& c) {
      if (c.rank() == 1) (void)c.recv(0, 77);  // nobody ever sends this
    });
    FAIL() << "expected the blocked recv to throw";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  // The diagnostic must name the blocked rank and the (src, tag) slot.
  EXPECT_NE(message.find("rank 1"), std::string::npos) << message;
  EXPECT_NE(message.find("src=0"), std::string::npos) << message;
  EXPECT_NE(message.find("tag=77"), std::string::npos) << message;
}

TEST(World, MailboxHighWaterAndSoftCap) {
  World w(2);
  w.set_mailbox_soft_cap(3);
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, 0, {static_cast<double>(i)});
      c.send(1, 1, {9.0});  // sync: all five are queued before rank 1 drains
    } else {
      (void)c.recv(0, 1);
      for (int i = 0; i < 5; ++i) (void)c.recv(0, 0);
    }
  });
  EXPECT_GE(w.mailbox_high_water(1), 5u);  // 5 queued on tag 0 + the sync msg
  EXPECT_EQ(w.mailbox_high_water(0), 0u);
  EXPECT_GT(w.stats(1).soft_cap_breaches, 0u);  // logged, never aborted
}

TEST(World, CommStatsCountTraffic) {
  World w(2);
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 0, {1.0, 2.0, 3.0});   // 3 doubles = 24 bytes
      c.send(1, 0, {4.0});             // 1 double  =  8 bytes
    } else {
      (void)c.recv(0, 0);
      (void)c.recv(0, 0);
    }
  });
  const CommStats s0 = w.stats(0);
  const CommStats s1 = w.stats(1);
  EXPECT_EQ(s0.messages_sent, 2u);
  EXPECT_EQ(s0.bytes_sent, 32u);
  EXPECT_EQ(s0.messages_received, 0u);
  EXPECT_EQ(s1.messages_received, 2u);
  EXPECT_EQ(s1.bytes_received, 32u);
  EXPECT_EQ(s1.messages_sent, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent Worlds: a serve-style process runs several in-process fabrics
// at once (one per server instance), so the transport must keep soft-cap
// accounting, stats, and shutdown strictly per-World.
// ---------------------------------------------------------------------------

TEST(World, SoftCapBackpressureUnderLoad) {
  // Flood a rank far past a small soft cap from two producers at once:
  // every message still arrives (the cap is advisory backpressure, never
  // loss) and the breach counter records the overrun.
  World w(3);
  w.set_mailbox_soft_cap(2);
  std::vector<double> sums(3, 0);
  w.run([&](Comm& c) {
    if (c.rank() != 2) {
      for (int i = 0; i < 40; ++i)
        c.isend(2, c.rank(), {static_cast<double>(i + 1)});
    } else {
      double s = 0;
      (void)std::this_thread::yield();  // let the queues actually pile up
      for (int src = 0; src < 2; ++src)
        for (int i = 0; i < 40; ++i) s += c.recv(src, src)[0];
      sums[2] = s;
    }
  });
  EXPECT_EQ(sums[2], 2 * (40.0 * 41.0 / 2));  // nothing lost
  EXPECT_GT(w.stats(2).soft_cap_breaches, 0u);
  EXPECT_GE(w.mailbox_high_water(2), 3u);  // cap exceeded, only logged
}

TEST(World, StatsIsolationBetweenSimultaneousWorlds) {
  // Two Worlds running concurrently on separate driver threads must keep
  // exact, independent traffic counts — no shared counters, no cross talk.
  World a(2), b(2);
  std::thread ta([&] {
    a.run([](Comm& c) {
      if (c.rank() == 0)
        for (int i = 0; i < 3; ++i) c.send(1, 0, {1.0, 2.0});
      else
        for (int i = 0; i < 3; ++i) (void)c.recv(0, 0);
    });
  });
  std::thread tb([&] {
    b.run([](Comm& c) {
      if (c.rank() == 0)
        for (int i = 0; i < 5; ++i) c.send(1, 0, {1.0});
      else
        for (int i = 0; i < 5; ++i) (void)c.recv(0, 0);
    });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.stats(0).messages_sent, 3u);
  EXPECT_EQ(a.stats(0).bytes_sent, 48u);  // 3 messages x 2 doubles
  EXPECT_EQ(a.stats(1).messages_received, 3u);
  EXPECT_EQ(b.stats(0).messages_sent, 5u);
  EXPECT_EQ(b.stats(0).bytes_sent, 40u);  // 5 messages x 1 double
  EXPECT_EQ(b.stats(1).messages_received, 5u);
  EXPECT_EQ(a.stats(0).soft_cap_breaches + a.stats(1).soft_cap_breaches, 0u);
}

TEST(World, ExceptionSafeShutdownWhileSecondWorldServes) {
  // World A deadlocks (a recv nobody answers) and is torn down through the
  // timeout diagnostic while World B keeps serving on another thread; B must
  // complete all its traffic untouched and A must not leak or hang.
  World broken(2);
  broken.set_recv_timeout(0.05);
  World healthy(2);
  std::atomic<bool> broken_threw{false};
  double healthy_sum = 0;
  std::thread tb([&] {
    healthy.run([&](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 20; ++i) {
          c.send(1, 0, {static_cast<double>(i)});
          // Stretch B's run across A's whole failure window.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      } else {
        double s = 0;
        for (int i = 0; i < 20; ++i) s += c.recv(0, 0)[0];
        healthy_sum = s;
      }
    });
  });
  try {
    broken.run([](Comm& c) {
      if (c.rank() == 1) (void)c.recv(0, 99);  // never sent
    });
  } catch (const std::runtime_error&) {
    broken_threw.store(true);
  }
  tb.join();
  EXPECT_TRUE(broken_threw.load());
  EXPECT_EQ(healthy_sum, 19.0 * 20.0 / 2);
  EXPECT_EQ(healthy.stats(0).messages_sent, 20u);
  // The broken World is destructible and queryable after the throw.
  EXPECT_EQ(broken.stats(0).messages_sent, 0u);
}

}  // namespace
}  // namespace xphi::net
