#include "pci/link.h"
#include "pci/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/injector.h"

namespace xphi::pci {
namespace {

TEST(PcieLink, TransferTimeIsLatencyPlusBandwidth) {
  PcieLink link;
  const double t = link.transfer_seconds(4e9, /*contended=*/true);
  EXPECT_NEAR(t, 15e-6 + 1.0, 1e-3);  // 4 GB at 4 GB/s
}

TEST(PcieLink, UncontendedIsFaster) {
  PcieLink link;
  EXPECT_LT(link.transfer_seconds(1e9, false), link.transfer_seconds(1e9, true));
}

TEST(PcieLink, MinKtMatchesPaperDerivation) {
  // Paper: BW ~ 4 GB/s, P ~ 950 GFLOPS => Kt should be at least 950.
  PcieLink link;
  EXPECT_NEAR(link.min_kt(950.0), 950.0, 1e-9);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.enqueue(1);
  q.enqueue(2);
  q.enqueue(3);
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_EQ(q.dequeue(), 3);
}

TEST(BlockingQueue, TryDequeueEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_dequeue().has_value());
  q.enqueue(5);
  EXPECT_EQ(q.try_dequeue(), 5);
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.enqueue(1);
  q.close();
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.enqueue(2));
}

TEST(BlockingQueue, ProducerConsumerAcrossThreads) {
  BlockingQueue<int> q(4);  // small capacity forces blocking
  constexpr int kItems = 1000;
  long long sum = 0;
  std::thread consumer([&] {
    while (auto v = q.dequeue()) sum += *v;
  });
  for (int i = 1; i <= kItems; ++i) q.enqueue(i);
  q.close();
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueue, MultipleConsumersConsumeAll) {
  BlockingQueue<int> q(8);
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      while (q.dequeue()) count.fetch_add(1);
    });
  for (int i = 0; i < 500; ++i) q.enqueue(i);
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(count.load(), 500);
}

TEST(BlockingQueue, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.enqueue(std::make_unique<int>(42));
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(BlockingQueue, DequeueForTimesOutOnEmptyQueue) {
  BlockingQueue<int> q;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.dequeue_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(BlockingQueue, DequeueForReturnsAvailableItemImmediately) {
  BlockingQueue<int> q;
  q.enqueue(9);
  EXPECT_EQ(q.dequeue_for(std::chrono::milliseconds(0)), 9);
  // And an item arriving mid-wait is picked up before the timeout.
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.enqueue(10);
  });
  EXPECT_EQ(q.dequeue_for(std::chrono::seconds(10)), 10);
  producer.join();
}

TEST(BlockingQueue, DequeueForDrainsThenEndsAfterClose) {
  BlockingQueue<int> q;
  q.enqueue(1);
  q.close();
  EXPECT_EQ(q.dequeue_for(std::chrono::milliseconds(1)), 1);
  EXPECT_FALSE(q.dequeue_for(std::chrono::milliseconds(1)).has_value());
}

TEST(BlockingQueue, CloseWhileFullReleasesBlockedProducers) {
  // Regression: producers blocked on a full queue must be released by
  // close() with a failed enqueue, and the items already accepted must
  // still drain in FIFO order before dequeue reports end-of-stream.
  BlockingQueue<int> q(2);
  ASSERT_TRUE(q.enqueue(1));
  ASSERT_TRUE(q.enqueue(2));
  std::atomic<int> blocked_results{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 3; ++i)
    producers.emplace_back([&, i] {
      if (!q.enqueue(100 + i)) blocked_results.fetch_add(1);
    });
  while (q.size() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  for (auto& p : producers) p.join();
  EXPECT_EQ(blocked_results.load(), 3);  // none of the blocked sends landed
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(BlockingQueue, FaultDropLosesPayloadButAcceptsDescriptor) {
  fault::InjectorConfig fc;
  fc.dma_request.drop = 1.0;
  fault::Injector inj(fc);
  BlockingQueue<int> q;
  q.attach_faults(&inj, fault::Site::kDmaRequest);
  EXPECT_TRUE(q.enqueue(1));  // producer sees success...
  EXPECT_EQ(q.size(), 0u);    // ...but nothing arrived
  EXPECT_EQ(inj.count(fault::Site::kDmaRequest, fault::Action::kDrop), 1u);
}

TEST(BlockingQueue, FaultDuplicateDeliversTwice) {
  fault::InjectorConfig fc;
  fc.dma_result.duplicate = 1.0;
  fault::Injector inj(fc);
  BlockingQueue<int> q;
  q.attach_faults(&inj, fault::Site::kDmaResult);
  EXPECT_TRUE(q.enqueue(7));
  EXPECT_EQ(q.dequeue(), 7);
  EXPECT_EQ(q.dequeue(), 7);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, FaultCorruptAppliesMutator) {
  fault::InjectorConfig fc;
  fc.dma_request.corrupt = 1.0;
  fault::Injector inj(fc);
  BlockingQueue<int> q;
  q.attach_faults(&inj, fault::Site::kDmaRequest);
  q.set_corruptor([](int& v) { v ^= 0xFF; });
  q.enqueue(0);
  EXPECT_EQ(q.dequeue(), 0xFF);
  // Without a mutator kCorrupt degrades to delivery-as-is.
  BlockingQueue<int> plain;
  plain.attach_faults(&inj, fault::Site::kDmaRequest);
  plain.enqueue(5);
  EXPECT_EQ(plain.dequeue(), 5);
}

TEST(BlockingQueue, MoveOnlyPayloadSkipsDuplicateFault) {
  // kDuplicate on a move-only payload can't copy; delivery degrades to one.
  fault::InjectorConfig fc;
  fc.dma_result.duplicate = 1.0;
  fault::Injector inj(fc);
  BlockingQueue<std::unique_ptr<int>> q;
  q.attach_faults(&inj, fault::Site::kDmaResult);
  q.enqueue(std::make_unique<int>(3));
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(PcieLink, DegradedTransferAddsInjectedLatency) {
  fault::InjectorConfig fc;
  fc.pcie.delay = 1.0;
  fc.pcie.delay_us = 500;
  fault::Injector inj(fc);
  PcieLink link;
  const double clean = link.transfer_seconds(1e6);
  EXPECT_DOUBLE_EQ(link.degraded_transfer_seconds(1e6), clean);  // unarmed
  link.attach_faults(&inj);
  EXPECT_DOUBLE_EQ(link.degraded_transfer_seconds(1e6), clean + 500e-6);
}

TEST(PcieLink, DegradedTransferDropCostsARetransmit) {
  fault::InjectorConfig fc;
  fc.pcie.drop = 1.0;
  fault::Injector inj(fc);
  PcieLink link;
  link.attach_faults(&inj);
  const double clean = link.transfer_seconds(1e6);
  EXPECT_DOUBLE_EQ(link.degraded_transfer_seconds(1e6), 2 * clean);
}

}  // namespace
}  // namespace xphi::pci
