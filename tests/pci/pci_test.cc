#include "pci/link.h"
#include "pci/queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace xphi::pci {
namespace {

TEST(PcieLink, TransferTimeIsLatencyPlusBandwidth) {
  PcieLink link;
  const double t = link.transfer_seconds(4e9, /*contended=*/true);
  EXPECT_NEAR(t, 15e-6 + 1.0, 1e-3);  // 4 GB at 4 GB/s
}

TEST(PcieLink, UncontendedIsFaster) {
  PcieLink link;
  EXPECT_LT(link.transfer_seconds(1e9, false), link.transfer_seconds(1e9, true));
}

TEST(PcieLink, MinKtMatchesPaperDerivation) {
  // Paper: BW ~ 4 GB/s, P ~ 950 GFLOPS => Kt should be at least 950.
  PcieLink link;
  EXPECT_NEAR(link.min_kt(950.0), 950.0, 1e-9);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.enqueue(1);
  q.enqueue(2);
  q.enqueue(3);
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_EQ(q.dequeue(), 3);
}

TEST(BlockingQueue, TryDequeueEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_dequeue().has_value());
  q.enqueue(5);
  EXPECT_EQ(q.try_dequeue(), 5);
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.enqueue(1);
  q.close();
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.enqueue(2));
}

TEST(BlockingQueue, ProducerConsumerAcrossThreads) {
  BlockingQueue<int> q(4);  // small capacity forces blocking
  constexpr int kItems = 1000;
  long long sum = 0;
  std::thread consumer([&] {
    while (auto v = q.dequeue()) sum += *v;
  });
  for (int i = 1; i <= kItems; ++i) q.enqueue(i);
  q.close();
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueue, MultipleConsumersConsumeAll) {
  BlockingQueue<int> q(8);
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      while (q.dequeue()) count.fetch_add(1);
    });
  for (int i = 0; i < 500; ++i) q.enqueue(i);
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(count.load(), 500);
}

TEST(BlockingQueue, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.enqueue(std::make_unique<int>(42));
  auto v = q.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace xphi::pci
