// Chaos-under-determinism for the solve server: injected transport faults,
// a slow link, and a card death mid-factorization must change wall-clock
// behaviour only — every response stays bitwise identical to the clean run
// and the dispatcher makes the exact same scheduling decisions (the virtual
// time they are computed in never sees a fault). Recorded traffic replays
// through the text codec land on the same bits too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/injector.h"
#include "serve/job.h"
#include "serve/server.h"

namespace xphi::serve {
namespace {

TrafficConfig chaos_traffic() {
  TrafficConfig cfg;
  cfg.mix = Mix::kRepeatRhs;
  cfg.jobs = 32;
  cfg.sizes = {32, 48};
  cfg.seed = 23;
  return cfg;
}

void expect_identical_responses(const ServeReport& a, const ServeReport& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].rejected, b.jobs[i].rejected);
    ASSERT_EQ(a.jobs[i].x.size(), b.jobs[i].x.size());
    for (std::size_t k = 0; k < a.jobs[i].x.size(); ++k)
      EXPECT_EQ(a.jobs[i].x[k], b.jobs[i].x[k]);  // bitwise
    EXPECT_EQ(a.jobs[i].virtual_latency_s, b.jobs[i].virtual_latency_s);
    EXPECT_EQ(a.jobs[i].worker, b.jobs[i].worker);
    EXPECT_EQ(a.jobs[i].batch_id, b.jobs[i].batch_id);
  }
}

void expect_identical_decisions(const ServeReport& a, const ServeReport& b) {
  EXPECT_EQ(a.decision_hash, b.decision_hash);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i)
    EXPECT_EQ(a.decisions[i], b.decisions[i]);
}

TEST(ServeChaos, NetFaultsAndSlowLinkChangeNothingObservable) {
  const auto trace = generate_trace(chaos_traffic());
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport clean = run_server(trace, cfg);

  fault::InjectorConfig fc;
  fc.seed = 5;
  fc.net.delay = 0.3;
  fc.net.drop = 0.1;  // reliable transport: retransmit penalty, never loss
  fc.net.delay_us = 300;
  fc.slow_rank = 1;  // first worker stalls before every send
  fc.slow_rank_us = 200;
  fault::Injector injector(fc);
  ServeConfig faulted_cfg = cfg;
  faulted_cfg.injector = &injector;
  const ServeReport faulted = run_server(trace, faulted_cfg);

  EXPECT_GT(injector.fired(), 0u);  // the chaos actually happened
  expect_identical_decisions(clean, faulted);
  expect_identical_responses(clean, faulted);
  EXPECT_EQ(clean.batches, faulted.batches);
  EXPECT_EQ(clean.rejected, faulted.rejected);
}

TEST(ServeChaos, DeadCardMidJobIsAbsorbedBitwise) {
  auto traffic = chaos_traffic();
  traffic.jobs = 12;
  traffic.sizes = {64};  // big enough for several offload tiles per update
  const auto trace = generate_trace(traffic);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.factor_cards = 2;  // factor trailing updates through the offload engine
  const ServeReport clean = run_server(trace, cfg);

  fault::InjectorConfig fc;
  fc.seed = 9;
  fc.dead_card = 1;
  fc.card_death_after = 1;  // dies mid-factorization, work re-homes
  fault::Injector injector(fc);
  ServeConfig faulted_cfg = cfg;
  faulted_cfg.injector = &injector;
  const ServeReport faulted = run_server(trace, faulted_cfg);

  expect_identical_decisions(clean, faulted);
  expect_identical_responses(clean, faulted);
}

TEST(ServeChaos, QueueFaultDelaysOnDispatchPathKeepDecisionsStable) {
  const auto trace = generate_trace(chaos_traffic());
  ServeConfig cfg;
  cfg.workers = 2;
  cfg.worker_inflight = 1;  // tight queues: every delay lands on the path
  const ServeReport clean = run_server(trace, cfg);

  fault::InjectorConfig fc;
  fc.seed = 13;
  fc.net.delay = 0.8;  // almost every message late
  fc.net.delay_us = 500;
  fault::Injector injector(fc);
  ServeConfig faulted_cfg = cfg;
  faulted_cfg.injector = &injector;
  const ServeReport faulted = run_server(trace, faulted_cfg);

  EXPECT_GT(injector.count(fault::Site::kNetMessage, fault::Action::kDelay),
            0u);
  expect_identical_decisions(clean, faulted);
  expect_identical_responses(clean, faulted);
  EXPECT_EQ(clean.soft_cap_breaches, faulted.soft_cap_breaches);
}

TEST(ServeChaos, RecordedTrafficReplaysDeterministically) {
  const auto trace = generate_trace(chaos_traffic());
  const std::string recorded = trace_to_text(trace);
  std::vector<Job> replayed;
  ASSERT_TRUE(trace_from_text(recorded, &replayed));
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport live = run_server(trace, cfg);
  const ServeReport replay = run_server(replayed, cfg);
  expect_identical_decisions(live, replay);
  expect_identical_responses(live, replay);
}

}  // namespace
}  // namespace xphi::serve
