#include "serve/job.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace xphi::serve {
namespace {

TEST(TrafficGen, DeterministicAndSorted) {
  TrafficConfig cfg;
  cfg.jobs = 200;
  cfg.seed = 7;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].matrix_seed, b[i].matrix_seed);
    EXPECT_EQ(a[i].rhs_seed, b[i].rhs_seed);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);  // bitwise
    if (i > 0) EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
  }
}

TEST(TrafficGen, SeedChangesTrace) {
  TrafficConfig cfg;
  cfg.jobs = 50;
  cfg.seed = 1;
  auto a = generate_trace(cfg);
  cfg.seed = 2;
  auto b = generate_trace(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff += a[i].matrix_seed != b[i].matrix_seed ||
            a[i].arrival_s != b[i].arrival_s;
  EXPECT_GT(diff, 0u);
}

TEST(TrafficGen, RepeatMixSharesHotMatrices) {
  TrafficConfig cfg;
  cfg.mix = Mix::kRepeatRhs;
  cfg.jobs = 300;
  cfg.hot_matrices = 4;
  const auto trace = generate_trace(cfg);
  std::set<std::uint64_t> seeds;
  for (const Job& j : trace) seeds.insert(j.matrix_seed);
  // 85% of 300 jobs share 4 hot seeds; the cold rest are unique. Far fewer
  // distinct matrices than jobs.
  EXPECT_LT(seeds.size(), trace.size() / 2);
  // Every rhs is fresh even when the matrix repeats.
  std::set<std::uint64_t> rhs;
  for (const Job& j : trace) rhs.insert(j.rhs_seed);
  EXPECT_EQ(rhs.size(), trace.size());
}

TEST(TrafficGen, UniformMixMostlyUniqueMatrices) {
  TrafficConfig cfg;
  cfg.mix = Mix::kUniform;
  cfg.jobs = 200;
  const auto trace = generate_trace(cfg);
  std::set<std::uint64_t> seeds;
  for (const Job& j : trace) seeds.insert(j.matrix_seed);
  EXPECT_GT(seeds.size(), trace.size() / 2);
}

TEST(TrafficGen, BurstyMixHasGaps) {
  TrafficConfig cfg;
  cfg.mix = Mix::kBursty;
  cfg.jobs = 64;
  cfg.burst_len = 8;
  cfg.burst_gap_us = 4000;
  cfg.burst_spacing_us = 20;
  const auto trace = generate_trace(cfg);
  // Every 8th inter-arrival is the big gap, the rest are tight.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].arrival_s - trace[i - 1].arrival_s;
    if (i % 8 == 0)
      EXPECT_NEAR(dt, 4000e-6, 1e-12);
    else
      EXPECT_NEAR(dt, 20e-6, 1e-12);
  }
}

TEST(TrafficGen, BothLanesAndAllTenantsRepresented) {
  TrafficConfig cfg;
  cfg.jobs = 200;
  cfg.tenants = 3;
  const auto trace = generate_trace(cfg);
  std::set<int> tenants;
  std::size_t interactive = 0, batch = 0;
  for (const Job& j : trace) {
    tenants.insert(j.tenant);
    (j.lane == Lane::kInteractive ? interactive : batch) += 1;
  }
  EXPECT_EQ(tenants.size(), 3u);
  EXPECT_GT(interactive, 0u);
  EXPECT_GT(batch, 0u);
}

TEST(TraceText, RoundTripsExactly) {
  TrafficConfig cfg;
  cfg.mix = Mix::kBursty;
  cfg.jobs = 40;
  cfg.seed = 99;
  const auto trace = generate_trace(cfg);
  const std::string text = trace_to_text(trace);
  std::vector<Job> back;
  ASSERT_TRUE(trace_from_text(text, &back));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].id, trace[i].id);
    EXPECT_EQ(back[i].tenant, trace[i].tenant);
    EXPECT_EQ(back[i].lane, trace[i].lane);
    EXPECT_EQ(back[i].arrival_s, trace[i].arrival_s);  // bitwise (hex float)
    EXPECT_EQ(back[i].n, trace[i].n);
    EXPECT_EQ(back[i].matrix_seed, trace[i].matrix_seed);
    EXPECT_EQ(back[i].rhs_seed, trace[i].rhs_seed);
  }
}

TEST(TraceText, RejectsMalformedInput) {
  std::vector<Job> out;
  EXPECT_FALSE(trace_from_text("", &out));
  EXPECT_FALSE(trace_from_text("not-a-trace v1 1\n", &out));
  EXPECT_FALSE(trace_from_text("xphi-trace v3 0\n", &out));
  EXPECT_FALSE(trace_from_text("xphi-trace v2 1\n1 0 0 0x0p+0 64 1 2\n",
                               &out));  // v2 line missing precision token
  EXPECT_FALSE(trace_from_text("xphi-trace v2 1\n1 0 0 0x0p+0 64 1 2 fp16\n",
                               &out));  // unknown precision
  EXPECT_FALSE(trace_from_text("xphi-trace v1 1\n1 0 7 0x0p+0 64 1 2\n",
                               &out));  // lane out of range
  EXPECT_FALSE(trace_from_text("xphi-trace v1 2\n0 0 0 0x0p+0 64 1 2\n",
                               &out));  // truncated
}

TEST(TraceText, FullRangeSeedsSurvive) {
  Job j;
  j.id = 3;
  j.rhs_seed = 0xfedcba9876543210ull;  // not representable in a double
  j.matrix_seed = 0xffffffffffffffffull;
  j.n = 96;
  const std::string text = trace_to_text({j});
  std::vector<Job> back;
  ASSERT_TRUE(trace_from_text(text, &back));
  EXPECT_EQ(back[0].rhs_seed, 0xfedcba9876543210ull);
  EXPECT_EQ(back[0].matrix_seed, 0xffffffffffffffffull);
}

}  // namespace
}  // namespace xphi::serve
