#include "serve/lu_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace xphi::serve {
namespace {

std::shared_ptr<const Factorization> make_value(std::size_t n, double fill) {
  auto f = std::make_shared<Factorization>();
  f->lu = util::Matrix<double>(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) f->lu(r, c) = fill;
  f->ipiv.assign(n, 0);
  return f;
}

CacheKey key_of(std::uint64_t hash) {
  return CacheKey{"machineA", "m64_n64_k32", hash};
}

TEST(ContentHash, BitExactAndSensitive) {
  const double a[3] = {1.0, 2.0, 3.0};
  const double b[3] = {1.0, 2.0, 3.0};
  const double c[3] = {1.0, 2.0, 3.0000000000000004};
  EXPECT_EQ(content_hash_doubles(a, 3), content_hash_doubles(b, 3));
  EXPECT_NE(content_hash_doubles(a, 3), content_hash_doubles(c, 3));
  // +0.0 and -0.0 differ in bits, so they must hash differently.
  const double p[1] = {0.0}, m[1] = {-0.0};
  EXPECT_NE(content_hash_doubles(p, 1), content_hash_doubles(m, 1));
}

TEST(CacheKeyTest, DistinguishesAllComponents) {
  const CacheKey base{"m1", "b1", 42};
  EXPECT_EQ(base, (CacheKey{"m1", "b1", 42}));
  EXPECT_NE(base.flat(), (CacheKey{"m2", "b1", 42}).flat());
  EXPECT_NE(base.flat(), (CacheKey{"m1", "b2", 42}).flat());
  EXPECT_NE(base.flat(), (CacheKey{"m1", "b1", 43}).flat());
}

TEST(ShardedLuCacheTest, MissThenHit) {
  ShardedLuCache cache(4, 16);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  auto v = make_value(4, 1.5);
  cache.insert(key_of(1), v);
  auto got = cache.find(key_of(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), v.get());  // same bits: the same object
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
}

TEST(ShardedLuCacheTest, LruEvictsOldest) {
  // One shard, two slots: inserting a third evicts the least recently used.
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));
  cache.insert(key_of(2), make_value(2, 2));
  ASSERT_NE(cache.find(key_of(1)), nullptr);  // refresh key 1
  cache.insert(key_of(3), make_value(2, 3));  // evicts key 2
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLuCacheTest, ReinsertReplacesWithoutEviction) {
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));
  auto v2 = make_value(2, 9);
  cache.insert(key_of(1), v2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.find(key_of(1)).get(), v2.get());
}

TEST(ShardedLuCacheTest, CapacitySplitsAcrossShards) {
  ShardedLuCache cache(4, 8);
  EXPECT_EQ(cache.shards(), 4u);
  // Each shard holds ceil(8/4) = 2; total never exceeds shards * 2.
  for (std::uint64_t i = 0; i < 64; ++i)
    cache.insert(key_of(i), make_value(2, static_cast<double>(i)));
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedLuCacheTest, KeysSpreadOverShards) {
  ShardedLuCache cache(4, 64);
  std::vector<bool> used(4, false);
  for (std::uint64_t i = 0; i < 32; ++i) used[cache.shard_of(key_of(i))] = true;
  std::size_t distinct = 0;
  for (bool u : used) distinct += u;
  EXPECT_GE(distinct, 3u);  // FNV spreads 32 keys over >= 3 of 4 shards
}

TEST(ShardedLuCacheTest, DegenerateGeometryClamps) {
  ShardedLuCache cache(0, 0);  // clamps to 1 shard, 1 slot
  EXPECT_EQ(cache.shards(), 1u);
  cache.insert(key_of(1), make_value(2, 1));
  cache.insert(key_of(2), make_value(2, 2));
  EXPECT_EQ(cache.size(), 1u);
}

std::shared_ptr<const Factorization> make_mixed_value(std::size_t n,
                                                      float fill) {
  auto f = std::make_shared<Factorization>();
  f->precision = hpl::Precision::kMixed;
  f->mixed.lu = util::Matrix<float>(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) f->mixed.lu(r, c) = fill;
  f->mixed.ipiv.assign(n, 0);
  return f;
}

TEST(ShardedLuCacheTest, CostUnitsFp32PacksTwiceAsDense) {
  // capacity 2 => one shard with a 4-unit budget: two fp64 entries (2 units
  // each) fill it, but FOUR fp32 entries (1 unit each) fit — the
  // cache-capacity dividend of half-size factors.
  ShardedLuCache cache(1, 2);
  EXPECT_EQ(cache.shard_unit_budget(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    cache.insert(key_of(i), make_mixed_value(2, static_cast<float>(i)));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.used_units(), 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_NE(cache.find(key_of(i)), nullptr) << i;
  // A fifth fp32 entry finally evicts the least recently used one.
  cache.insert(key_of(4), make_mixed_value(2, 4.0f));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(key_of(0)), nullptr);
}

TEST(ShardedLuCacheTest, CostUnitsAllFp64MatchesEntryCountLru) {
  // The budget is 2x the entry share and fp64 costs 2, so an all-fp64
  // workload sees exactly the historical entry-count LRU: capacity 2 holds
  // two entries, never three.
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));
  cache.insert(key_of(2), make_value(2, 2));
  EXPECT_EQ(cache.used_units(), 4u);
  cache.insert(key_of(3), make_value(2, 3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.used_units(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLuCacheTest, CostUnitsMixedWorkloadEvictsUntilFits) {
  // 4-unit budget holding one fp64 (2) + two fp32 (1+1): a new fp64 entry
  // needs 2 units, so the oldest entry (the fp64 one) goes — freeing
  // exactly enough; the two fp32 entries survive.
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));            // 2 units (oldest)
  cache.insert(key_of(2), make_mixed_value(2, 2.0f));   // 1 unit
  cache.insert(key_of(3), make_mixed_value(2, 3.0f));   // 1 unit
  EXPECT_EQ(cache.used_units(), 4u);
  cache.insert(key_of(4), make_value(2, 4));            // needs 2 units
  EXPECT_EQ(cache.find(key_of(1)), nullptr);            // evicted
  EXPECT_NE(cache.find(key_of(2)), nullptr);
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_NE(cache.find(key_of(4)), nullptr);
  EXPECT_LE(cache.used_units(), cache.shard_unit_budget());
  // fp64 and fp32 factors of the same matrix never alias: the bucket carries
  // an "|fp32" suffix in the server's key, making them distinct keys. Model
  // that here: both live side by side.
  ShardedLuCache both(1, 2);
  both.insert(CacheKey{"m", "b64", 7}, make_value(2, 1));
  both.insert(CacheKey{"m", "b64|fp32", 7}, make_mixed_value(2, 1.0f));
  EXPECT_EQ(both.size(), 2u);
  EXPECT_NE(both.find(CacheKey{"m", "b64", 7}), nullptr);
  EXPECT_NE(both.find(CacheKey{"m", "b64|fp32", 7}), nullptr);
}

TEST(ShardedLuCacheTest, ConcurrentMixedTrafficIsSafe) {
  ShardedLuCache cache(4, 32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t k = (i + static_cast<std::uint64_t>(t) * 7) % 48;
        if (auto hit = cache.find(key_of(k))) {
          // Values are immutable; a hit is always fully formed.
          EXPECT_EQ(hit->lu.rows(), 2u);
        } else {
          cache.insert(key_of(k), make_value(2, static_cast<double>(k)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 2000u);
  EXPECT_LE(cache.size(), 32u);
}

}  // namespace
}  // namespace xphi::serve
