#include "serve/lu_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace xphi::serve {
namespace {

std::shared_ptr<const Factorization> make_value(std::size_t n, double fill) {
  auto f = std::make_shared<Factorization>();
  f->lu = util::Matrix<double>(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) f->lu(r, c) = fill;
  f->ipiv.assign(n, 0);
  return f;
}

CacheKey key_of(std::uint64_t hash) {
  return CacheKey{"machineA", "m64_n64_k32", hash};
}

TEST(ContentHash, BitExactAndSensitive) {
  const double a[3] = {1.0, 2.0, 3.0};
  const double b[3] = {1.0, 2.0, 3.0};
  const double c[3] = {1.0, 2.0, 3.0000000000000004};
  EXPECT_EQ(content_hash_doubles(a, 3), content_hash_doubles(b, 3));
  EXPECT_NE(content_hash_doubles(a, 3), content_hash_doubles(c, 3));
  // +0.0 and -0.0 differ in bits, so they must hash differently.
  const double p[1] = {0.0}, m[1] = {-0.0};
  EXPECT_NE(content_hash_doubles(p, 1), content_hash_doubles(m, 1));
}

TEST(CacheKeyTest, DistinguishesAllComponents) {
  const CacheKey base{"m1", "b1", 42};
  EXPECT_EQ(base, (CacheKey{"m1", "b1", 42}));
  EXPECT_NE(base.flat(), (CacheKey{"m2", "b1", 42}).flat());
  EXPECT_NE(base.flat(), (CacheKey{"m1", "b2", 42}).flat());
  EXPECT_NE(base.flat(), (CacheKey{"m1", "b1", 43}).flat());
}

TEST(ShardedLuCacheTest, MissThenHit) {
  ShardedLuCache cache(4, 16);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  auto v = make_value(4, 1.5);
  cache.insert(key_of(1), v);
  auto got = cache.find(key_of(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), v.get());  // same bits: the same object
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
}

TEST(ShardedLuCacheTest, LruEvictsOldest) {
  // One shard, two slots: inserting a third evicts the least recently used.
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));
  cache.insert(key_of(2), make_value(2, 2));
  ASSERT_NE(cache.find(key_of(1)), nullptr);  // refresh key 1
  cache.insert(key_of(3), make_value(2, 3));  // evicts key 2
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr);
  EXPECT_NE(cache.find(key_of(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLuCacheTest, ReinsertReplacesWithoutEviction) {
  ShardedLuCache cache(1, 2);
  cache.insert(key_of(1), make_value(2, 1));
  auto v2 = make_value(2, 9);
  cache.insert(key_of(1), v2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.find(key_of(1)).get(), v2.get());
}

TEST(ShardedLuCacheTest, CapacitySplitsAcrossShards) {
  ShardedLuCache cache(4, 8);
  EXPECT_EQ(cache.shards(), 4u);
  // Each shard holds ceil(8/4) = 2; total never exceeds shards * 2.
  for (std::uint64_t i = 0; i < 64; ++i)
    cache.insert(key_of(i), make_value(2, static_cast<double>(i)));
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ShardedLuCacheTest, KeysSpreadOverShards) {
  ShardedLuCache cache(4, 64);
  std::vector<bool> used(4, false);
  for (std::uint64_t i = 0; i < 32; ++i) used[cache.shard_of(key_of(i))] = true;
  std::size_t distinct = 0;
  for (bool u : used) distinct += u;
  EXPECT_GE(distinct, 3u);  // FNV spreads 32 keys over >= 3 of 4 shards
}

TEST(ShardedLuCacheTest, DegenerateGeometryClamps) {
  ShardedLuCache cache(0, 0);  // clamps to 1 shard, 1 slot
  EXPECT_EQ(cache.shards(), 1u);
  cache.insert(key_of(1), make_value(2, 1));
  cache.insert(key_of(2), make_value(2, 2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLuCacheTest, ConcurrentMixedTrafficIsSafe) {
  ShardedLuCache cache(4, 32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t k = (i + static_cast<std::uint64_t>(t) * 7) % 48;
        if (auto hit = cache.find(key_of(k))) {
          // Values are immutable; a hit is always fully formed.
          EXPECT_EQ(hit->lu.rows(), 2u);
        } else {
          cache.insert(key_of(k), make_value(2, static_cast<double>(k)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 2000u);
  EXPECT_LE(cache.size(), 32u);
}

}  // namespace
}  // namespace xphi::serve
