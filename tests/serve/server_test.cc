#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "blas/getrf.h"
#include "blas/lu_kernels.h"
#include "hpl/mixed.h"
#include "serve/job.h"
#include "trace/timeline.h"
#include "tune/knobs.h"
#include "tune/search_space.h"
#include "tune/tuner.h"
#include "util/rng.h"

namespace xphi::serve {
namespace {

/// Max |A x - b| for one job's reported solution.
double solve_residual(const Job& job, const std::vector<double>& x) {
  std::vector<double> b(job.n);
  util::Rng rng(job.rhs_seed);
  for (std::size_t i = 0; i < job.n; ++i) b[i] = rng.next_centered();
  double worst = 0;
  for (std::size_t r = 0; r < job.n; ++r) {
    double acc = 0;
    for (std::size_t c = 0; c < job.n; ++c)
      acc += util::hpl_entry(job.matrix_seed, r, c) * x[c];
    worst = std::max(worst, std::abs(acc - b[r]));
  }
  return worst;
}

TrafficConfig small_traffic(Mix mix, std::size_t jobs = 40) {
  TrafficConfig cfg;
  cfg.mix = mix;
  cfg.jobs = jobs;
  cfg.sizes = {32, 48, 64};
  cfg.seed = 11;
  return cfg;
}

TEST(Server, AnswersEveryJobCorrectly) {
  const auto trace = generate_trace(small_traffic(Mix::kUniform));
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport report = run_server(trace, cfg);
  ASSERT_EQ(report.jobs.size(), trace.size());
  EXPECT_EQ(report.completed + report.rejected, trace.size());
  EXPECT_EQ(report.rejected, 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const JobOutcome& out = report.jobs[i];
    ASSERT_EQ(out.x.size(), trace[i].n);
    EXPECT_LT(solve_residual(trace[i], out.x), 1e-8);
    EXPECT_GT(out.virtual_latency_s, 0);
    EXPECT_GE(out.worker, 0);
  }
  EXPECT_GT(report.batches, 0u);
  EXPECT_GT(report.p99_virtual_latency_s, 0);
  EXPECT_GE(report.p99_virtual_latency_s, report.p50_virtual_latency_s);
  EXPECT_GT(report.throughput_jobs_per_s, 0);
  EXPECT_EQ(report.soft_cap_breaches, 0u);
}

TEST(Server, DeterministicDecisionsAndBitwiseResponses) {
  const auto trace = generate_trace(small_traffic(Mix::kRepeatRhs, 48));
  ServeConfig cfg;
  cfg.workers = 3;
  const ServeReport a = run_server(trace, cfg);
  const ServeReport b = run_server(trace, cfg);
  EXPECT_EQ(a.decision_hash, b.decision_hash);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i)
    EXPECT_EQ(a.decisions[i], b.decisions[i]);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].x.size(), b.jobs[i].x.size());
    for (std::size_t k = 0; k < a.jobs[i].x.size(); ++k)
      EXPECT_EQ(a.jobs[i].x[k], b.jobs[i].x[k]);  // bitwise
    EXPECT_EQ(a.jobs[i].virtual_latency_s, b.jobs[i].virtual_latency_s);
    EXPECT_EQ(a.jobs[i].worker, b.jobs[i].worker);
    EXPECT_EQ(a.jobs[i].batch_id, b.jobs[i].batch_id);
  }
  // The virtual timeline is part of the deterministic surface too.
  ASSERT_EQ(a.timeline.spans().size(), b.timeline.spans().size());
  EXPECT_EQ(trace::timeline_to_json(a.timeline),
            trace::timeline_to_json(b.timeline));
}

TEST(Server, AdmissionRejectsWhenLaneQueueFull) {
  auto traffic = small_traffic(Mix::kBursty, 60);
  traffic.burst_len = 20;
  traffic.burst_spacing_us = 1;  // whole burst lands inside one service time
  const auto trace = generate_trace(traffic);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.worker_inflight = 1;
  cfg.admission_queue = 3;
  const ServeReport report = run_server(trace, cfg);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(report.completed + report.rejected, trace.size());
  EXPECT_EQ(report.soft_cap_breaches, 0u);  // backpressure held the bound
  bool saw_reject_line = false;
  for (const std::string& line : report.decisions)
    saw_reject_line |= line.find("reject job=") == 0;
  EXPECT_TRUE(saw_reject_line);
  for (const JobOutcome& out : report.jobs)
    if (out.rejected) EXPECT_TRUE(out.x.empty());
}

TEST(Server, SoftCapBreachesSurfaceWhenMisconfigured) {
  auto traffic = small_traffic(Mix::kBursty, 40);
  traffic.burst_len = 20;
  traffic.burst_spacing_us = 1;
  const auto trace = generate_trace(traffic);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.worker_inflight = 16;  // overrun a single worker's mailbox...
  cfg.mailbox_soft_cap = 2;  // ...past a deliberately tiny soft cap
  const ServeReport report = run_server(trace, cfg);
  EXPECT_GT(report.soft_cap_breaches, 0u);
  // Soft caps log and count — they never drop work.
  EXPECT_EQ(report.completed + report.rejected, trace.size());
}

TEST(Server, CacheHitsOnRepeatTrafficAndNeverWithCacheOff) {
  const auto trace = generate_trace(small_traffic(Mix::kRepeatRhs, 48));
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport warm = run_server(trace, cfg);
  EXPECT_GT(warm.cache_hits, 0u);
  cfg.use_cache = false;
  const ServeReport cold = run_server(trace, cfg);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.batches);
  // Identical answers either way.
  for (std::size_t i = 0; i < trace.size(); ++i)
    for (std::size_t k = 0; k < warm.jobs[i].x.size(); ++k)
      EXPECT_EQ(warm.jobs[i].x[k], cold.jobs[i].x[k]);
}

TEST(Server, BatchingCoalescesCompatibleJobs) {
  auto traffic = small_traffic(Mix::kRepeatRhs, 48);
  traffic.interactive_fraction = 0;  // batch lane only
  traffic.hot_matrices = 2;
  traffic.sizes = {48};
  const auto trace = generate_trace(traffic);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.batch_window_us = 2000;  // generous coalescing window
  const ServeReport report = run_server(trace, cfg);
  EXPECT_LT(report.batches, trace.size());  // strictly fewer batches than jobs
  // At least one super-stage carries several jobs, and batches only ever
  // coalesce compatible work.
  std::map<std::uint64_t, std::vector<std::size_t>> by_batch;
  for (std::size_t i = 0; i < report.jobs.size(); ++i)
    by_batch[report.jobs[i].batch_id].push_back(i);
  std::size_t largest = 0;
  for (const auto& [id, members] : by_batch) {
    largest = std::max(largest, members.size());
    for (std::size_t m : members) {
      EXPECT_EQ(trace[m].n, trace[members[0]].n);
      EXPECT_EQ(trace[m].matrix_seed, trace[members[0]].matrix_seed);
    }
  }
  EXPECT_GT(largest, 1u);
}

TEST(Server, StarvationProtectionPromotesAgedBatchWork) {
  // One batch job at t=0 under continuous interactive pressure. With the
  // starvation bound it must dispatch before the interactive stream ends.
  std::vector<Job> trace;
  Job batch_job;
  batch_job.id = 0;
  batch_job.lane = Lane::kBatch;
  batch_job.arrival_s = 0;
  batch_job.n = 48;
  batch_job.matrix_seed = 101;
  batch_job.rhs_seed = 5001;
  trace.push_back(batch_job);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    Job j;
    j.id = i;
    j.lane = Lane::kInteractive;
    j.arrival_s = static_cast<double>(i) * 50e-6;
    j.n = 48;
    j.matrix_seed = 200 + i;
    j.rhs_seed = 6000 + i;
    trace.push_back(j);
  }
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.worker_inflight = 1;
  cfg.lane_weight = 1000;      // weight alone would starve the batch lane
  cfg.batch_window_us = 100;
  cfg.starvation_age_us = 500;
  const ServeReport report = run_server(trace, cfg);
  EXPECT_EQ(report.rejected, 0u);
  std::ptrdiff_t batch_at = -1, last_interactive_at = -1;
  for (std::size_t i = 0; i < report.decisions.size(); ++i) {
    if (report.decisions[i].find("lane=batch") != std::string::npos)
      batch_at = static_cast<std::ptrdiff_t>(i);
    if (report.decisions[i].find("lane=interactive") != std::string::npos)
      last_interactive_at = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(batch_at, 0);
  EXPECT_LT(batch_at, last_interactive_at);
}

TEST(Server, DagRuntimeFactorizationIsBitwiseIdentical) {
  const auto trace = generate_trace(small_traffic(Mix::kUniform, 16));
  ServeConfig cfg;
  cfg.workers = 1;
  const ServeReport seq = run_server(trace, cfg);
  cfg.factor_workers = 3;  // super-stages factor on the DAG runtime
  const ServeReport dag = run_server(trace, cfg);
  EXPECT_EQ(seq.decision_hash, dag.decision_hash);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(seq.jobs[i].x.size(), dag.jobs[i].x.size());
    for (std::size_t k = 0; k < seq.jobs[i].x.size(); ++k)
      EXPECT_EQ(seq.jobs[i].x[k], dag.jobs[i].x[k]);
  }
}

TEST(Server, MixedPrecisionJobsEndToEnd) {
  // Half the traffic requests mixed precision: mixed jobs must come back
  // bitwise-equal to the sequential factor_mixed + refine_mixed oracle,
  // fp64 jobs bitwise-equal to the classic fp64 path, batches must never
  // coalesce across precisions, and the dispatch log must say which is which.
  auto traffic = small_traffic(Mix::kRepeatRhs, 48);
  traffic.mixed_fraction = 0.5;
  const auto trace = generate_trace(traffic);
  std::size_t n_mixed = 0, n_fp64 = 0;
  for (const Job& j : trace)
    (j.precision == hpl::Precision::kMixed ? n_mixed : n_fp64)++;
  ASSERT_GT(n_mixed, 0u);
  ASSERT_GT(n_fp64, 0u);

  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport report = run_server(trace, cfg);
  EXPECT_EQ(report.rejected, 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const JobOutcome& out = report.jobs[i];
    ASSERT_EQ(out.x.size(), trace[i].n);
    EXPECT_EQ(out.precision, trace[i].precision);
    const std::size_t n = trace[i].n;
    util::Matrix<double> a(n, n);
    util::fill_hpl_matrix(a.view(), trace[i].matrix_seed);
    std::vector<double> b(n);
    util::Rng rng(trace[i].rhs_seed);
    for (auto& v : b) v = rng.next_centered();
    if (trace[i].precision == hpl::Precision::kMixed) {
      hpl::MixedOptions mo;
      mo.nb = cfg.nb;
      hpl::MixedFactors f;
      ASSERT_TRUE(hpl::factor_mixed(a.view(), f, mo));
      const hpl::MixedSolveResult sol = hpl::refine_mixed(a.view(), b, f);
      ASSERT_TRUE(sol.ok);
      for (std::size_t k = 0; k < n; ++k)
        ASSERT_EQ(out.x[k], sol.x[k]) << "job " << i << " k=" << k;
    } else {
      std::vector<std::size_t> ipiv(n);
      ASSERT_TRUE(blas::getrf_blocked<double>(a.view(), ipiv, cfg.nb));
      std::vector<double> x = b;
      blas::lu_solve_vector<double>(a.view(), ipiv, x);
      for (std::size_t k = 0; k < n; ++k)
        ASSERT_EQ(out.x[k], x[k]) << "job " << i << " k=" << k;
    }
    EXPECT_LT(solve_residual(trace[i], out.x), 1e-8);
  }
  // Batches never coalesce across precisions.
  std::map<std::uint64_t, std::vector<std::size_t>> by_batch;
  for (std::size_t i = 0; i < report.jobs.size(); ++i)
    by_batch[report.jobs[i].batch_id].push_back(i);
  for (const auto& [id, members] : by_batch)
    for (std::size_t m : members)
      EXPECT_EQ(trace[m].precision, trace[members[0]].precision)
          << "batch " << id;
  // The dispatch log labels both precisions.
  bool saw_mixed = false, saw_fp64 = false;
  for (const std::string& line : report.decisions) {
    saw_mixed |= line.find("prec=mixed") != std::string::npos;
    saw_fp64 |= line.find("prec=fp64") != std::string::npos;
  }
  EXPECT_TRUE(saw_mixed);
  EXPECT_TRUE(saw_fp64);
}

TEST(Server, MixedTrafficCacheAnswersBitwiseIdentical) {
  // Cache on vs off may not change a bit of any answer, mixed included —
  // fp32 factors are deterministic, so a hit replays the first factor's
  // exact bits through the refinement.
  auto traffic = small_traffic(Mix::kRepeatRhs, 48);
  traffic.mixed_fraction = 1.0;  // all-mixed repeat traffic
  const auto trace = generate_trace(traffic);
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport warm = run_server(trace, cfg);
  EXPECT_GT(warm.cache_hits, 0u);
  cfg.use_cache = false;
  const ServeReport cold = run_server(trace, cfg);
  EXPECT_EQ(cold.cache_hits, 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(warm.jobs[i].x.size(), cold.jobs[i].x.size());
    for (std::size_t k = 0; k < warm.jobs[i].x.size(); ++k)
      EXPECT_EQ(warm.jobs[i].x[k], cold.jobs[i].x[k]);
  }
}

TEST(Server, AllFp64TraceUnchangedByMixedFraction) {
  // mixed_fraction = 0 must not even draw from the RNG: the generated trace
  // is bit-for-bit the pre-mixed-precision one.
  const auto a = generate_trace(small_traffic(Mix::kUniform, 32));
  auto traffic = small_traffic(Mix::kUniform, 32);
  traffic.mixed_fraction = 0;
  const auto b = generate_trace(traffic);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].precision, hpl::Precision::kFp64);
    EXPECT_EQ(a[i].matrix_seed, b[i].matrix_seed);
    EXPECT_EQ(a[i].rhs_seed, b[i].rhs_seed);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
  }
}

TEST(Server, TenantRollupsAccountForEveryJob) {
  const auto trace = generate_trace(small_traffic(Mix::kUniform, 40));
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport report = run_server(trace, cfg);
  std::size_t jobs = 0, rejected = 0;
  double busy = 0, bytes = 0;
  for (const TenantRollup& t : report.tenants) {
    jobs += t.jobs;
    rejected += t.rejected;
    busy += t.worker_busy_s;
    bytes += t.comm_bytes;
    if (t.jobs > t.rejected) {
      EXPECT_GT(t.p50_virtual_latency_s, 0);
      EXPECT_GE(t.p99_virtual_latency_s, t.p50_virtual_latency_s);
    }
  }
  EXPECT_EQ(jobs, trace.size());
  EXPECT_EQ(rejected, report.rejected);
  EXPECT_GT(busy, 0);
  EXPECT_GT(bytes, 0);
  // Attributed busy time equals the timeline's span area (same model).
  double span_area = 0;
  for (const auto& s : report.timeline.spans()) span_area += s.duration();
  EXPECT_NEAR(busy, span_area, 1e-9);
}

TEST(Server, TimelineExportsAsJson) {
  const auto trace = generate_trace(small_traffic(Mix::kUniform, 12));
  ServeConfig cfg;
  cfg.workers = 2;
  const ServeReport report = run_server(trace, cfg);
  EXPECT_GT(report.timeline.spans().size(), 0u);
  const std::string json = trace::timeline_to_json(report.timeline);
  EXPECT_NE(json.find("\"schema\": \"xphi-timeline\""), std::string::npos);
  EXPECT_NE(json.find("DGETRF"), std::string::npos);  // factor spans
  EXPECT_NE(json.find("DTRSM"), std::string::npos);   // solve spans
}

TEST(Percentile, NearestRank) {
  EXPECT_EQ(percentile({}, 0.5), 0);
  EXPECT_EQ(percentile({3, 1, 2}, 0.5), 2);
  EXPECT_EQ(percentile({3, 1, 2}, 0.99), 3);
  EXPECT_EQ(percentile({5}, 0.01), 5);
}

TEST(ServeKnobs, SpaceNamesMatchKnobCodec) {
  const tune::SearchSpace space = tune::spaces::serve();
  ASSERT_EQ(space.dims(), 5u);
  // Evaluate the space's default point through the knob codec and back.
  std::vector<std::pair<std::string, long long>> values;
  const auto point = space.default_point();
  const auto vals = space.values_at(point);
  for (std::size_t d = 0; d < space.dims(); ++d)
    values.emplace_back(space.dim(d).name, vals[d]);
  const tune::Knobs knobs = tune::knobs_from_values(values);
  EXPECT_EQ(knobs.serve_batch_window_us, 200u);
  EXPECT_EQ(knobs.serve_cache_shards, 4u);
  EXPECT_EQ(knobs.serve_cache_capacity, 32u);
  EXPECT_EQ(knobs.serve_lane_weight, 4);
  EXPECT_EQ(knobs.serve_admission_queue, 64u);
  // And the encoded form round-trips.
  const auto encoded = tune::values_from_knobs(knobs);
  const tune::Knobs back = tune::knobs_from_values(encoded);
  EXPECT_EQ(back.serve_batch_window_us, knobs.serve_batch_window_us);
  EXPECT_EQ(back.serve_admission_queue, knobs.serve_admission_queue);
}

TEST(ServeKnobs, ConfigApplyOverlaysOnlySetFields) {
  ServeConfig cfg;
  cfg.batch_window_us = 999;
  tune::Knobs knobs;
  knobs.serve_cache_shards = 8;
  knobs.serve_lane_weight = 2;
  cfg.apply(knobs);
  EXPECT_EQ(cfg.batch_window_us, 999);  // not set: untouched
  EXPECT_EQ(cfg.cache_shards, 8u);
  EXPECT_EQ(cfg.lane_weight, 2);
  EXPECT_EQ(cfg.admission_queue, 64u);
}

TEST(ServeKnobs, TunerStoresAndRecallsServeEntry) {
  tune::Tuner tuner;
  const tune::SearchSpace space = tune::spaces::serve();
  // Deterministic toy objective: prefer large windows and wide queues.
  const auto eval = [&space](const std::vector<long long>& v) {
    double cost = 0;
    for (std::size_t d = 0; d < space.dims(); ++d)
      cost += 1.0 / static_cast<double>(v[d]);
    return cost;
  };
  tune::SearchOptions opt;
  opt.budget = 32;
  const auto result =
      tuner.tune("serve", tune::bucket(64, 64, 32), space, eval, opt);
  EXPECT_GT(result.evaluations, 0u);
  const auto best = tuner.best("serve", tune::bucket(60, 60, 30));  // same bucket band
  ASSERT_TRUE(best.has_value());
  ServeConfig cfg;
  cfg.apply(*best);
  EXPECT_EQ(cfg.batch_window_us, 800);  // largest candidate wins the toy cost
  EXPECT_EQ(cfg.admission_queue, 256u);
}

}  // namespace
}  // namespace xphi::serve
