#include "sim/cache.h"

#include <gtest/gtest.h>

namespace xphi::sim {
namespace {

TEST(Cache, ColdMissThenHit) {
  SetAssociativeCache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, GeometryDerivedFromTotals) {
  const auto l1 = SetAssociativeCache::knc_l1();
  EXPECT_EQ(l1.sets(), 64u);  // 32 KB / (8 ways * 64 B)
  EXPECT_EQ(l1.ways(), 8u);
  const auto l2 = SetAssociativeCache::knc_l2();
  EXPECT_EQ(l2.sets(), 1024u);
}

TEST(Cache, LruEvictsOldest) {
  // Direct-mapped-ish: 2 ways, 1 set when total = 2 lines.
  SetAssociativeCache c(128, 2, 64);
  EXPECT_EQ(c.sets(), 1u);
  c.access(0);    // A miss
  c.access(64);   // B miss
  c.access(0);    // A hit (refreshes A)
  c.access(128);  // C miss -> evicts B (LRU)
  EXPECT_TRUE(c.access(0));     // A still resident
  EXPECT_FALSE(c.access(64));   // B was evicted
}

TEST(Cache, AssociativityConflictOnPowerOfTwoStride) {
  // The Section III-A3 claim: a column walk with a large power-of-two
  // leading dimension maps every element to the same set and thrashes,
  // while the same data contiguous is nearly all hits after the cold miss.
  auto l1a = SetAssociativeCache::knc_l1();
  // Stride of 32 KB (4096 doubles) * 8B: every access hits set 0.
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t r = 0; r < 30; ++r) l1a.access(r * 4096 * 8);
  auto l1b = SetAssociativeCache::knc_l1();
  for (int rep = 0; rep < 4; ++rep)
    for (std::uint64_t r = 0; r < 30; ++r) l1b.access(r * 8);
  EXPECT_GT(l1a.miss_rate(), 0.7);   // 30 lines into 8 ways of one set
  EXPECT_LT(l1b.miss_rate(), 0.05);  // 30 doubles span 4 lines
}

TEST(Tlb, HitsWithinPage) {
  Tlb tlb(4, 4096);
  EXPECT_FALSE(tlb.access(0));
  EXPECT_TRUE(tlb.access(4095));
  EXPECT_FALSE(tlb.access(4096));
}

TEST(Tlb, ThrashesWhenWorkingSetExceedsEntries) {
  auto tlb = Tlb::knc_dtlb();  // 64 entries
  // Touch 128 distinct pages repeatedly: every access is a miss under LRU.
  for (int rep = 0; rep < 3; ++rep)
    for (std::uint64_t p = 0; p < 128; ++p) tlb.access(p * 4096);
  EXPECT_GT(tlb.miss_rate(), 0.99);
}

TEST(Walk, PackedBeatsUnpackedColumnAccess) {
  // Walking a 30-row column of a matrix with leading dimension 28000 touches
  // 30 pages per column; the packed tile walk stays within a few pages.
  const auto unpacked = walk_column_access(
      30, 240, 28000, SetAssociativeCache::knc_l1(), Tlb::knc_dtlb());
  const auto packed = walk_column_access(
      30, 240, 30, SetAssociativeCache::knc_l1(), Tlb::knc_dtlb());
  EXPECT_GT(unpacked.tlb_miss_rate, packed.tlb_miss_rate * 5);
  EXPECT_GT(unpacked.cache_miss_rate, packed.cache_miss_rate);
}

TEST(Walk, PowerOfTwoLeadingDimensionIsWorstForCache) {
  // ld = 32768 doubles: column elements collide in the same L1 set, the
  // associativity-conflict case the paper's packing avoids.
  const auto pow2 = walk_column_access(30, 64, 32768,
                                       SetAssociativeCache::knc_l1(),
                                       Tlb::knc_dtlb());
  const auto odd = walk_column_access(30, 64, 32768 + 8,
                                      SetAssociativeCache::knc_l1(),
                                      Tlb::knc_dtlb());
  EXPECT_GT(pow2.cache_miss_rate, odd.cache_miss_rate * 1.5);
}

}  // namespace
}  // namespace xphi::sim
