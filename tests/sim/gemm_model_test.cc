#include "sim/gemm_model.h"

#include <gtest/gtest.h>

#include <tuple>

namespace xphi::sim {
namespace {

class KncModelTest : public ::testing::Test {
 protected:
  KncGemmModel model_;
  const int cores_ = MachineSpec::knights_corner().compute_cores();
};

// Table II anchor: DGEMM reaches 89.4% at k=300 for M=N=28000 (packing
// included). Tolerance 1% absolute — the model is calibrated, not fitted
// point-by-point.
TEST_F(KncModelTest, TableIIDgemmPeakAtK300) {
  const double eff = model_.gemm_efficiency(28000, 28000, 300, 300,
                                            /*include_packing=*/true,
                                            Precision::kDouble, cores_);
  EXPECT_NEAR(eff, 0.894, 0.010);
}

// Table II anchor: SGEMM reaches 90.8% at k=400.
TEST_F(KncModelTest, TableIISgemmPeakAtK400) {
  const double eff = model_.gemm_efficiency(28000, 28000, 400, 400, true,
                                            Precision::kSingle, cores_);
  EXPECT_NEAR(eff, 0.908, 0.010);
}

// Table II shape: DGEMM efficiency rises with k up to 300 then dips.
TEST_F(KncModelTest, DgemmEfficiencyPeaksNearK300) {
  auto eff = [&](std::size_t k) {
    return model_.gemm_efficiency(28000, 28000, k, k, true, Precision::kDouble,
                                  cores_);
  };
  EXPECT_LT(eff(120), eff(180));
  EXPECT_LT(eff(180), eff(240));
  EXPECT_LT(eff(240), eff(300));
  EXPECT_GT(eff(300), eff(340));
  EXPECT_GT(eff(340), eff(400));
}

// Table II shape: SGEMM (half the element size: L2 blocks always fit)
// improves monotonically through k=400.
TEST_F(KncModelTest, SgemmEfficiencyMonotoneThrough400) {
  auto eff = [&](std::size_t k) {
    return model_.gemm_efficiency(28000, 28000, k, k, true, Precision::kSingle,
                                  cores_);
  };
  EXPECT_LT(eff(120), eff(240));
  EXPECT_LT(eff(240), eff(300));
  EXPECT_LT(eff(300), eff(400));
}

// Working-set arithmetic from Section III-A1: 8*(m*k + n*k + m*n) with
// m=120, n=32. k=240 fits comfortably under the usable-L2 threshold; k=400
// overflows it for DP but not for SP (half the element size).
TEST_F(KncModelTest, WorkingSetResidency) {
  const double usable = model_.params().l2_usable_bytes;
  EXPECT_LT(model_.working_set_bytes(240, Precision::kDouble), usable);
  EXPECT_GT(model_.working_set_bytes(400, Precision::kDouble), usable);
  EXPECT_LT(model_.working_set_bytes(400, Precision::kSingle), usable);
  // Exact byte count for the paper's example block: 8*(120*240+32*240+120*32).
  EXPECT_DOUBLE_EQ(model_.working_set_bytes(240, Precision::kDouble),
                   8.0 * (120 * 240 + 32 * 240 + 120 * 32));
}

// Figure 4 anchor: outer-product kernel (no packing) reaches ~88% at 5K.
TEST_F(KncModelTest, Fig4KernelEfficiencyAt5K) {
  const double eff = model_.gemm_efficiency(5000, 5000, 300, 300, false,
                                            Precision::kDouble, cores_);
  EXPECT_NEAR(eff, 0.88, 0.015);
}

// Figure 4: packing overhead 15% at 1K, under 2%+eps at 5K, under 1% at 17K.
TEST_F(KncModelTest, Fig4PackingOverheadDecays) {
  auto overhead = [&](std::size_t n) {
    const double with = model_.gemm_seconds(n, n, 300, 300, true,
                                            Precision::kDouble, cores_);
    const double without = model_.gemm_seconds(n, n, 300, 300, false,
                                               Precision::kDouble, cores_);
    return (with - without) / with;
  };
  EXPECT_NEAR(overhead(1000), 0.15, 0.05);
  EXPECT_LT(overhead(5000), 0.035);
  EXPECT_LT(overhead(17000), 0.01);
  EXPECT_GT(overhead(1000), overhead(5000));
  EXPECT_GT(overhead(5000), overhead(17000));
}

// Efficiency is quoted against peak: at k=300 the kernel should deliver about
// 944 GFLOPS on 60 cores (Table II).
TEST_F(KncModelTest, TableIIDgemmGflops) {
  const double gf = model_.gemm_gflops(28000, 28000, 300, 300, true,
                                       Precision::kDouble, cores_);
  EXPECT_NEAR(gf, 944.0, 12.0);
}

TEST_F(KncModelTest, UtilizationPerfectOnExactGrid) {
  // 60 cores * block (120 x 32): a 7200 x 320 matrix gives exactly 600 blocks
  // = 10 rounds of 60.
  EXPECT_NEAR(model_.utilization(7200, 320, 60), 1.0, 1e-9);
}

TEST_F(KncModelTest, UtilizationDropsForTinyMatrices) {
  EXPECT_LT(model_.utilization(200, 64, 60), 0.5);
}

TEST_F(KncModelTest, Basic1VariantIsSlower) {
  KncGemmParams p1;
  p1.variant = KernelVariant::kBasic1;
  KncGemmModel m1(MachineSpec::knights_corner(), p1);
  EXPECT_LT(m1.issue_efficiency(Precision::kDouble),
            model_.issue_efficiency(Precision::kDouble));
}

TEST_F(KncModelTest, GemmSecondsScalesWithWork) {
  const double t1 = model_.gemm_seconds(8000, 8000, 300, 300, false,
                                        Precision::kDouble, cores_);
  const double t2 = model_.gemm_seconds(16000, 16000, 300, 300, false,
                                        Precision::kDouble, cores_);
  EXPECT_NEAR(t2 / t1, 4.0, 0.2);  // 4x the flops
}

TEST_F(KncModelTest, PartialLastChunkHandled) {
  const double t = model_.gemm_seconds(1000, 1000, 450, 300, false,
                                       Precision::kDouble, cores_);
  const double t300 = model_.gemm_seconds(1000, 1000, 300, 300, false,
                                          Precision::kDouble, cores_);
  const double t150 = model_.gemm_seconds(1000, 1000, 150, 150, false,
                                          Precision::kDouble, cores_);
  EXPECT_NEAR(t, t300 + t150, 1e-12);
}

// Parameter perturbations must move efficiency in the physically expected
// direction (guards against sign errors in the model composition).
TEST_F(KncModelTest, ParameterPerturbationsActCorrectly) {
  sim::KncGemmParams p;
  // Bigger L2 penalty hurts k=400 (overflowing) but not k=240 (resident).
  p.l2_penalty_max = 0.05;
  KncGemmModel harsher(MachineSpec::knights_corner(), p);
  EXPECT_LT(harsher.block_efficiency(400, Precision::kDouble),
            model_.block_efficiency(400, Precision::kDouble));
  EXPECT_NEAR(harsher.block_efficiency(240, Precision::kDouble),
              model_.block_efficiency(240, Precision::kDouble), 1e-12);

  // Bigger fixed outer-product cost hurts small N more than large N.
  sim::KncGemmParams q;
  q.fixed_outer_product_seconds = 2e-3;
  KncGemmModel slow_start(MachineSpec::knights_corner(), q);
  const double small_drop =
      model_.gemm_efficiency(2000, 2000, 300, 300, false, Precision::kDouble, 60) -
      slow_start.gemm_efficiency(2000, 2000, 300, 300, false, Precision::kDouble, 60);
  const double large_drop =
      model_.gemm_efficiency(28000, 28000, 300, 300, false, Precision::kDouble, 60) -
      slow_start.gemm_efficiency(28000, 28000, 300, 300, false, Precision::kDouble, 60);
  EXPECT_GT(small_drop, large_drop * 3);
}

TEST_F(KncModelTest, PackingOnlyAffectsPackingPath) {
  sim::KncGemmParams p;
  p.pack_bw_half_size = 50000.0;  // much slower packing
  KncGemmModel slow_pack(MachineSpec::knights_corner(), p);
  EXPECT_DOUBLE_EQ(
      slow_pack.gemm_seconds(8000, 8000, 300, 300, false, Precision::kDouble, 60),
      model_.gemm_seconds(8000, 8000, 300, 300, false, Precision::kDouble, 60));
  EXPECT_GT(
      slow_pack.gemm_seconds(8000, 8000, 300, 300, true, Precision::kDouble, 60),
      model_.gemm_seconds(8000, 8000, 300, 300, true, Precision::kDouble, 60));
}

// --- SNB host model ---

TEST(SnbModel, DgemmApproaches90Percent) {
  SnbModel snb;
  EXPECT_NEAR(snb.dgemm_efficiency(28000, 28000, 28000), 0.90, 0.01);
  EXPECT_LT(snb.dgemm_efficiency(1000, 1000, 1000), 0.75);
}

TEST(SnbModel, HplMatchesFig6Anchor) {
  SnbModel snb;
  // 277 GFLOPS = 83% at N=30K (Figure 6).
  EXPECT_NEAR(snb.hpl_gflops(30000), 277.0, 4.0);
  EXPECT_NEAR(snb.hpl_efficiency(30000), 0.832, 0.01);
}

TEST(SnbModel, HplEfficiencyIncreasesWithN) {
  SnbModel snb;
  EXPECT_LT(snb.hpl_efficiency(5000), snb.hpl_efficiency(15000));
  EXPECT_LT(snb.hpl_efficiency(15000), snb.hpl_efficiency(30000));
}

TEST(SnbModel, SecondsPositiveAndFinite) {
  SnbModel snb;
  const double t = snb.hpl_seconds(10000);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1e4);
}

// Property sweep: efficiency always in (0, 1] for a range of shapes.
class KncEffSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KncEffSweep, EfficiencyInRange) {
  const auto [n, k] = GetParam();
  KncGemmModel model;
  const double eff =
      model.gemm_efficiency(n, n, k, k, true, Precision::kDouble, 60);
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 0.94);  // never exceeds the kernel's issue efficiency
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, KncEffSweep,
    ::testing::Combine(::testing::Values(500, 1000, 5000, 10000, 28000),
                       ::testing::Values(120, 240, 300, 400)));

}  // namespace
}  // namespace xphi::sim
