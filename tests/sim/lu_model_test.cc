#include "sim/lu_model.h"

#include <gtest/gtest.h>

namespace xphi::sim {
namespace {

class KncLuModelTest : public ::testing::Test {
 protected:
  KncLuModel model_;
};

TEST_F(KncLuModelTest, PanelTimeGrowsWithRows) {
  EXPECT_LT(model_.panel_seconds(5000, 240, 4),
            model_.panel_seconds(30000, 240, 4));
}

TEST_F(KncLuModelTest, PanelSpeedsUpWithCoresButSublinearly) {
  const double t4 = model_.panel_seconds(30000, 240, 4);
  const double t8 = model_.panel_seconds(30000, 240, 8);
  EXPECT_LT(t8, t4);
  // Pivot synchronization grows with the group: less than 2x speedup.
  EXPECT_GT(t8 * 2.0, t4);
}

TEST_F(KncLuModelTest, EarlyStagePanelHiddenByUpdate) {
  // Paper Section IV-A: 4 threads (1 core) suffice to hide the panel during
  // early stages dominated by large trailing updates. Compare the panel on a
  // small group with the full-device trailing update at stage 0 of N=30K.
  const double panel = model_.panel_seconds(30000 - 240, 240, 4);
  const double update = model_.update_gemm_seconds(30000 - 240, 30000 - 240, 240,
                                                   /*cores=*/56);
  EXPECT_LT(panel, update);
}

TEST_F(KncLuModelTest, LateStagePanelNotHiddenBySmallGroup) {
  // ... but at a 4K remaining matrix the same 1-core group can no longer hide
  // the panel — the load imbalance the super-stage regrouping fixes.
  const double panel = model_.panel_seconds(4000, 240, 1);
  const double update = model_.update_gemm_seconds(4000, 4000, 240, 59);
  EXPECT_GT(panel, update);
}

TEST_F(KncLuModelTest, SwapIsBandwidthBound) {
  const double t = model_.swap_seconds(240, 10000);
  // bytes = 2*2*8*240*10000 = 76.8 MB at 90 GB/s ~ 0.85 ms.
  EXPECT_NEAR(t, 76.8e6 / (150e9 * 0.6), 1e-6);
}

TEST_F(KncLuModelTest, TrsmFasterThanUpdateForSameWidth) {
  // DTRSM has nb/2(rows) the flops of the full-height GEMM update.
  const double trsm = model_.trsm_seconds(240, 10000, 60);
  const double gemm = model_.update_gemm_seconds(10000, 10000, 240, 60);
  EXPECT_LT(trsm, gemm);
}

TEST_F(KncLuModelTest, ZeroWorkIsFree) {
  EXPECT_EQ(model_.panel_seconds(0, 240, 4), 0.0);
  EXPECT_EQ(model_.update_gemm_seconds(100, 0, 240, 4), 0.0);
  EXPECT_EQ(model_.trsm_seconds(240, 0, 4), 0.0);
}

TEST(SnbLuModel, HostPanelFasterPerCoreThanKnc) {
  // The paper offloads DGEMM but keeps panels on the host because SNB's
  // out-of-order cores handle the latency-bound panel far better.
  KncLuModel knc;
  SnbLuModel snb;
  const double knc_t = knc.panel_seconds(80000, 1200, 8);
  const double snb_t = snb.panel_seconds(80000, 1200, 8);
  EXPECT_LT(snb_t, knc_t);
}

TEST(SnbLuModel, DgemmUsesHostEnvelope) {
  SnbLuModel snb;
  const double t = snb.dgemm_seconds(8000, 8000, 1200, 16);
  EXPECT_GT(t, 0.0);
  // 2*8000^2*1200 flops at <= 333 GFLOPS: at least 0.46 s.
  EXPECT_GT(t, 0.4);
}

TEST(SnbLuModel, SwapScalesWithWidth) {
  SnbLuModel snb;
  EXPECT_NEAR(snb.swap_seconds(1200, 20000) / snb.swap_seconds(1200, 10000),
              2.0, 1e-9);
}

}  // namespace
}  // namespace xphi::sim
