#include "sim/machine.h"

#include <gtest/gtest.h>

namespace xphi::sim {
namespace {

// Table I anchors.
TEST(Machine, KnightsCornerMatchesTableI) {
  const MachineSpec m = MachineSpec::knights_corner();
  EXPECT_EQ(m.total_cores(), 61);
  EXPECT_EQ(m.threads_per_core, 4);
  EXPECT_EQ(m.total_threads(), 244);
  EXPECT_NEAR(m.peak_gflops(Precision::kDouble), 1074.0, 1.0);
  EXPECT_NEAR(m.peak_gflops(Precision::kSingle), 2148.0, 2.0);
  EXPECT_EQ(m.l2_bytes, 512u * 1024u);
  EXPECT_EQ(m.dram_bytes, 8ull << 30);
  EXPECT_DOUBLE_EQ(m.stream_bw_gbs, 150.0);
}

TEST(Machine, KnightsCornerReservesOsCore) {
  const MachineSpec m = MachineSpec::knights_corner();
  EXPECT_EQ(m.compute_cores(), 60);
  // Native peak is quoted against 60 cores: 60 * 1.1 * 16 = 1056.
  EXPECT_NEAR(m.native_peak_gflops(), 1056.0, 0.5);
}

TEST(Machine, SandyBridgeMatchesTableI) {
  const MachineSpec m = MachineSpec::sandy_bridge_ep();
  EXPECT_EQ(m.total_cores(), 16);
  EXPECT_EQ(m.total_threads(), 32);
  EXPECT_NEAR(m.peak_gflops(Precision::kDouble), 333.0, 1.0);
  EXPECT_NEAR(m.peak_gflops(Precision::kSingle), 666.0, 1.0);
  EXPECT_EQ(m.compute_cores(), 16);
  EXPECT_DOUBLE_EQ(m.stream_bw_gbs, 76.0);
}

TEST(Machine, KncToSnbFlopRatioIsAboutSixForTwoCards) {
  // Paper Section V-A: "two Knights Corner cards can deliver roughly six
  // times the flops compared to Sandy Bridge EP".
  const double knc = MachineSpec::knights_corner().peak_gflops();
  const double snb = MachineSpec::sandy_bridge_ep().peak_gflops();
  EXPECT_NEAR(2.0 * knc / snb, 6.45, 0.2);
}

TEST(Machine, CycleSeconds) {
  const MachineSpec m = MachineSpec::knights_corner();
  EXPECT_NEAR(m.cycle_seconds(), 1.0 / 1.1e9, 1e-15);
}

TEST(Machine, PartialCorePeak) {
  const MachineSpec m = MachineSpec::knights_corner();
  EXPECT_NEAR(m.peak_gflops(Precision::kDouble, 1), 17.6, 0.01);
}

}  // namespace
}  // namespace xphi::sim
