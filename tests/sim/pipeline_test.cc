#include "sim/pipeline.h"

#include <gtest/gtest.h>

namespace xphi::sim {
namespace {

TEST(KernelStream, Basic1Has31FmasAllFromMemory) {
  const auto ops = kernel_instruction_stream(KernelVariant::kBasic1);
  ASSERT_EQ(ops.size(), 32u);
  int fma = 0, mem = 0;
  for (const auto& op : ops) {
    fma += op.is_fma;
    mem += op.reads_memory;
  }
  EXPECT_EQ(fma, 31);
  EXPECT_EQ(mem, 32);  // every instruction occupies the L1 read port
}

TEST(KernelStream, Basic2Has30FmasAndFourHoles) {
  const auto ops = kernel_instruction_stream(KernelVariant::kBasic2);
  ASSERT_EQ(ops.size(), 32u);
  int fma = 0, holes = 0;
  for (const auto& op : ops) {
    fma += op.is_fma;
    holes += !op.reads_memory;
  }
  EXPECT_EQ(fma, 30);
  EXPECT_EQ(holes, 4);  // the four swizzle vmadds free the L1 port
}

// Paper Section III-A2: "As few as two stall cycles in the tight inner-loop
// will reduce overall efficiency down to 91% = 31/(32+2)".
TEST(Pipeline, Basic1SuffersTwoStallsPerIteration) {
  const PipelineResult r = simulate_inner_loop(KernelVariant::kBasic1);
  EXPECT_NEAR(r.stall_cycles_per_iteration, 2.0, 0.05);
  EXPECT_NEAR(r.cycles_per_iteration, 34.0, 0.1);
  EXPECT_NEAR(r.issue_efficiency(), 31.0 / 34.0, 0.005);
}

// Paper: "the peak theoretical efficiency of Basic Kernel 2 is
// 93.7% (= 30/32)" — the broadcast/swizzle holes absorb both fills.
TEST(Pipeline, Basic2IsStallFree) {
  const PipelineResult r = simulate_inner_loop(KernelVariant::kBasic2);
  EXPECT_NEAR(r.stall_cycles_per_iteration, 0.0, 1e-9);
  EXPECT_NEAR(r.issue_efficiency(), 30.0 / 32.0, 1e-6);
}

TEST(Pipeline, Basic2BeatsBasic1) {
  const double e2 = simulate_inner_loop(KernelVariant::kBasic2).issue_efficiency();
  const double e1 = simulate_inner_loop(KernelVariant::kBasic1).issue_efficiency();
  EXPECT_GT(e2, e1);
}

TEST(Pipeline, NoPrefetchIsMuchWorse) {
  const double e0 =
      simulate_inner_loop(KernelVariant::kNoPrefetch).issue_efficiency();
  const double e1 = simulate_inner_loop(KernelVariant::kBasic1).issue_efficiency();
  EXPECT_LT(e0, e1 - 0.05);  // demand misses expose L2 latency
}

TEST(Pipeline, MoreFillsMeansMoreStallsForBasic1) {
  PipelineParams heavy;
  heavy.fills_per_iteration = 4.0;
  const PipelineResult r = simulate_inner_loop(KernelVariant::kBasic1, heavy);
  EXPECT_NEAR(r.stall_cycles_per_iteration, 4.0, 0.1);
}

TEST(Pipeline, Basic2HolesAbsorbPartOfAHeavierFillLoad) {
  // At twice the nominal fill rate the four port holes can no longer absorb
  // everything, but Basic Kernel 2 still stalls strictly less than Basic
  // Kernel 1, whose stream never frees the port.
  PipelineParams heavy;
  heavy.fills_per_iteration = 4.0;
  const PipelineResult r2 = simulate_inner_loop(KernelVariant::kBasic2, heavy);
  const PipelineResult r1 = simulate_inner_loop(KernelVariant::kBasic1, heavy);
  EXPECT_NEAR(r1.stall_cycles_per_iteration, 4.0, 0.1);
  EXPECT_LT(r2.stall_cycles_per_iteration, r1.stall_cycles_per_iteration);
}

TEST(Pipeline, FractionalFillRatesAverageOut) {
  PipelineParams p;
  p.fills_per_iteration = 1.5;
  const PipelineResult r =
      simulate_inner_loop(KernelVariant::kBasic1, p, /*iterations=*/4096);
  EXPECT_NEAR(r.stall_cycles_per_iteration, 1.5, 0.1);
}

}  // namespace
}  // namespace xphi::sim
