#include "sim/smt_core.h"

#include <gtest/gtest.h>

namespace xphi::sim {
namespace {

// The paper's derivation: one b line per iteration per thread, plus the
// ~3.75 lines of a 30-element column shared across 4 threads => ~2 lines
// per iteration per thread.
TEST(SmtCore, SharedSyncedThreadsNeedTwoLinesPerIteration) {
  SmtGemmConfig cfg;
  const auto r = simulate_smt_gemm(cfg);
  EXPECT_NEAR(r.lines_per_iteration, 2.0, 0.15);
}

// Without sharing, every thread pays the full column: ~5 lines.
TEST(SmtCore, UnsharedThreadsNeedFiveLinesPerIteration) {
  SmtGemmConfig cfg;
  cfg.share_a_tile = false;
  const auto r = simulate_smt_gemm(cfg);
  EXPECT_NEAR(r.lines_per_iteration, 4.75, 0.3);
}

// "...as long as all threads are synchronized": with enough drift the
// leading thread's a lines are evicted before the trailing threads arrive.
TEST(SmtCore, DriftDefeatsSharing) {
  // Small drift survives (the trailing threads relay-refresh the LRU), but
  // once the inter-thread distance outgrows what L1 retains, each thread
  // refetches the column and lines/iteration climbs toward the unshared 5.
  SmtGemmConfig synced;
  synced.k = 16384;
  SmtGemmConfig drifted = synced;
  drifted.drift_iterations = 512;
  const auto rs = simulate_smt_gemm(synced);
  const auto rd = simulate_smt_gemm(drifted);
  EXPECT_GT(rd.lines_per_iteration, rs.lines_per_iteration * 1.4);
  SmtGemmConfig far = synced;
  far.drift_iterations = 2048;
  EXPECT_GT(simulate_smt_gemm(far).lines_per_iteration, 3.5);
}

TEST(SmtCore, SmallDriftStillMostlyReuses) {
  SmtGemmConfig cfg;
  cfg.drift_iterations = 64;  // within the relay-refresh reach of L1
  const auto r = simulate_smt_gemm(cfg);
  EXPECT_LT(r.lines_per_iteration, 2.2);
}

TEST(SmtCore, SharingImprovesIpc) {
  SmtGemmConfig shared;
  SmtGemmConfig unshared;
  unshared.share_a_tile = false;
  const auto rs = simulate_smt_gemm(shared);
  const auto ru = simulate_smt_gemm(unshared);
  EXPECT_GT(rs.ipc, ru.ipc);
  EXPECT_LE(rs.ipc, 1.0);
}

TEST(SmtCore, FourThreadsHideMostOfTheL2Latency) {
  // With 2 misses per 5-slot iteration and 24-cycle latency, a single
  // thread would be hopelessly stalled; four threads keep the pipe busy
  // most cycles.
  SmtGemmConfig four;
  const auto r4 = simulate_smt_gemm(four);
  SmtGemmConfig one;
  one.threads = 1;
  const auto r1 = simulate_smt_gemm(one);
  EXPECT_GT(r4.ipc, r1.ipc * 1.5);
}

TEST(SmtCore, InstructionCountMatchesStructure) {
  SmtGemmConfig cfg;
  cfg.k = 100;
  const auto r = simulate_smt_gemm(cfg);
  // 4 threads x 100 iterations x (1 b-load + 4 a-line touches).
  EXPECT_EQ(r.instructions, 4u * 100u * 5u);
}

TEST(SmtCore, LargerL2LatencyLowersIpc) {
  SmtGemmConfig fast;
  SmtGemmConfig slow;
  slow.l2_latency_cycles = 120;
  EXPECT_GT(simulate_smt_gemm(fast).ipc, simulate_smt_gemm(slow).ipc);
}

}  // namespace
}  // namespace xphi::sim
