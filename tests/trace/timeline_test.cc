#include "trace/timeline.h"

#include <gtest/gtest.h>

namespace xphi::trace {
namespace {

TEST(Timeline, RecordsSpansAndExtent) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.0);
  tl.record(2, SpanKind::kPanelFactor, 0.5, 2.0);
  EXPECT_EQ(tl.spans().size(), 2u);
  EXPECT_EQ(tl.lanes(), 3u);
  EXPECT_DOUBLE_EQ(tl.end_time(), 2.0);
}

TEST(Timeline, IgnoresEmptySpans) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 1.0, 1.0);
  EXPECT_TRUE(tl.spans().empty());
}

TEST(Timeline, BusyByKindAggregates) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.0);
  tl.record(1, SpanKind::kGemm, 0.0, 0.5);
  tl.record(0, SpanKind::kTrsm, 1.0, 1.25);
  const auto busy = tl.busy_by_kind();
  EXPECT_DOUBLE_EQ(busy.at(SpanKind::kGemm), 1.5);
  EXPECT_DOUBLE_EQ(busy.at(SpanKind::kTrsm), 0.25);
}

TEST(Timeline, LaneBusyExcludesIdle) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.0);
  tl.record(0, SpanKind::kIdle, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(tl.lane_busy(0), 1.0);
}

TEST(Timeline, UtilizationIsAreaFraction) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.0);
  tl.record(1, SpanKind::kGemm, 0.0, 2.0);
  // busy 3.0 over area 2 lanes * 2.0s.
  EXPECT_DOUBLE_EQ(tl.utilization(), 0.75);
}

TEST(Gantt, RendersOneRowPerLane) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.0);
  tl.record(1, SpanKind::kPanelFactor, 0.0, 1.0);
  const std::string g = render_gantt(tl, 10);
  // Two lane rows plus legend.
  EXPECT_NE(g.find("g0 |MMMMMMMMMM|"), std::string::npos);
  EXPECT_NE(g.find("g1 |GGGGGGGGGG|"), std::string::npos);
  EXPECT_NE(g.find("legend"), std::string::npos);
}

TEST(Gantt, DominantKindWinsBucket) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 0.9);
  tl.record(0, SpanKind::kTrsm, 0.9, 1.0);
  const std::string g = render_gantt(tl, 1);
  EXPECT_NE(g.find("g0 |M|"), std::string::npos);
}

TEST(Gantt, IdleRendersAsDots) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 0.5);
  tl.record(1, SpanKind::kGemm, 0.5, 1.0);
  const std::string g = render_gantt(tl, 4);
  EXPECT_NE(g.find("g0 |MM..|"), std::string::npos);
  EXPECT_NE(g.find("g1 |..MM|"), std::string::npos);
}

TEST(Gantt, EmptyTimeline) {
  Timeline tl;
  EXPECT_EQ(render_gantt(tl), "(empty timeline)\n");
}

TEST(TimelineCsv, SerializesSpans) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.0, 1.5);
  tl.record(2, SpanKind::kRowSwap, 1.5, 2.0);
  const std::string csv = timeline_to_csv(tl);
  EXPECT_NE(csv.find("lane,kind,t0,t1\n"), std::string::npos);
  EXPECT_NE(csv.find("0,DGEMM,0,1.5"), std::string::npos);
  EXPECT_NE(csv.find("2,DLASWP,1.5,2"), std::string::npos);
}

TEST(TimelineJson, SerializesSchemaAndSpans) {
  Timeline tl;
  tl.record(0, SpanKind::kGemm, 0.25, 1.0);
  tl.record(2, SpanKind::kRowSwap, 1.5, 2.0);
  const std::string json = timeline_to_json(tl);
  EXPECT_NE(json.find("\"schema\": \"xphi-timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"end\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"lanes\": 3"), std::string::npos);
  EXPECT_NE(json.find("{\"lane\": 0, \"kind\": \"DGEMM\", \"t0\": 0.25, "
                      "\"t1\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"lane\": 2, \"kind\": \"DLASWP\", \"t0\": 1.5, "
                      "\"t1\": 2}"),
            std::string::npos);
}

TEST(TimelineJson, EmptyTimelineIsValid) {
  const std::string json = timeline_to_json(Timeline{});
  EXPECT_NE(json.find("\"spans\": []}"), std::string::npos);
}

TEST(CrossLaneOverlap, SumsPairwiseOverlapOnDifferentLanesOnly) {
  Timeline tl;
  tl.record(0, SpanKind::kBroadcast, 0.0, 2.0);
  tl.record(0, SpanKind::kGemm, 0.5, 1.0);  // same lane: must not count
  tl.record(1, SpanKind::kGemm, 1.0, 3.0);  // overlaps [1, 2) with lane 0
  tl.record(2, SpanKind::kGemm, 5.0, 6.0);  // disjoint in time
  EXPECT_DOUBLE_EQ(
      cross_lane_overlap(tl, SpanKind::kBroadcast, SpanKind::kGemm), 1.0);
  // Symmetric in the two kinds.
  EXPECT_DOUBLE_EQ(
      cross_lane_overlap(tl, SpanKind::kGemm, SpanKind::kBroadcast), 1.0);
  // A broadcast overlapping two partners counts twice.
  tl.record(2, SpanKind::kGemm, 1.5, 2.5);  // adds [1.5, 2) = 0.5
  EXPECT_DOUBLE_EQ(
      cross_lane_overlap(tl, SpanKind::kBroadcast, SpanKind::kGemm), 1.5);
  EXPECT_DOUBLE_EQ(cross_lane_overlap(tl, SpanKind::kTrsm, SpanKind::kGemm),
                   0.0);
}

TEST(SpanKindMeta, NamesAndGlyphsDistinct) {
  EXPECT_STREQ(span_kind_name(SpanKind::kGemm), "DGEMM");
  EXPECT_EQ(span_kind_glyph(SpanKind::kPanelFactor), 'G');
  EXPECT_NE(span_kind_glyph(SpanKind::kGemm), span_kind_glyph(SpanKind::kTrsm));
}

}  // namespace
}  // namespace xphi::trace
