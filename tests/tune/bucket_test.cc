#include "tune/bucket.h"

#include <gtest/gtest.h>

#include <limits>

namespace xphi::tune {
namespace {

TEST(BucketExtent, DegenerateAndUnit) {
  EXPECT_EQ(bucket_extent(0), 0u);
  EXPECT_EQ(bucket_extent(1), 1u);
}

TEST(BucketExtent, PowersOfTwoAreFixedPoints) {
  for (std::size_t b = 1; b <= (std::size_t{1} << 20); b <<= 1)
    EXPECT_EQ(bucket_extent(b), b) << b;
}

TEST(BucketExtent, RoundsUpToNextPowerOfTwo) {
  EXPECT_EQ(bucket_extent(3), 4u);
  EXPECT_EQ(bucket_extent(5), 8u);
  EXPECT_EQ(bucket_extent(1025), 2048u);
  // One past a power of two doubles: the boundary the tests pin.
  EXPECT_EQ(bucket_extent((std::size_t{1} << 16) + 1), std::size_t{1} << 17);
  EXPECT_EQ(bucket_extent((std::size_t{1} << 16) - 1), std::size_t{1} << 16);
}

TEST(BucketExtent, SaturatesAtTopBitInsteadOfOverflowing) {
  constexpr std::size_t kTop = std::size_t{1}
                               << (8 * sizeof(std::size_t) - 1);
  EXPECT_EQ(bucket_extent(kTop), kTop);
  EXPECT_EQ(bucket_extent(kTop + 1), kTop);
  EXPECT_EQ(bucket_extent(std::numeric_limits<std::size_t>::max()), kTop);
}

TEST(Bucket, ShapesWithinTwoXShareABucket) {
  // An 82000^2 trailing update warm-starts a 70000^2 one (same 2x band) …
  EXPECT_EQ(bucket(82000, 82000, 1200), bucket(70000, 70000, 1200));
  // … but a shape an order of magnitude smaller never aliases it.
  EXPECT_NE(bucket(82000, 82000, 1200), bucket(8000, 8000, 1200));
}

TEST(Bucket, KeyIsStableAndDistinguishesDimensions) {
  EXPECT_EQ(bucket(82000, 82000, 1200).key(), "m131072_n131072_k2048");
  EXPECT_EQ(bucket(0, 1, 2).key(), "m0_n1_k2");
  // m and n are not interchangeable in the key.
  EXPECT_NE(bucket(100, 200, 50).key(), bucket(200, 100, 50).key());
}

TEST(Bucket, ConstexprUsable) {
  static_assert(bucket_extent(7) == 8);
  static_assert(bucket(3, 5, 9) == ShapeBucket{4, 8, 16});
  SUCCEED();
}

}  // namespace
}  // namespace xphi::tune
