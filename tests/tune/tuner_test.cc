#include "tune/tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "blas/gemm_ref.h"
#include "blas/lu_kernels.h"
#include "core/offload_dgemm.h"
#include "core/offload_functional.h"
#include "lu/native_linpack.h"
#include "sim/machine.h"
#include "tune/search_space.h"
#include "util/rng.h"

namespace xphi::tune {
namespace {

SearchSpace quadratic_space() {
  return SearchSpace{}
      .add("x", {0, 1, 2, 3, 4, 5, 6, 7}, 0)
      .add("y", {10, 20, 30, 40, 50}, 10);
}

// Separable bowl with its minimum at (5, 30): coordinate descent finds it
// exactly.
double quadratic_cost(const std::vector<long long>& v) {
  const double dx = static_cast<double>(v[0]) - 5.0;
  const double dy = (static_cast<double>(v[1]) - 30.0) / 10.0;
  return dx * dx + dy * dy;
}

TEST(SearchSpace, DefaultsValuesAndNearest) {
  const SearchSpace s = quadratic_space();
  ASSERT_EQ(s.dims(), 2u);
  EXPECT_EQ(s.points(), 40u);
  EXPECT_EQ(s.default_point(), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(s.values_at({5, 2}), (std::vector<long long>{5, 30}));
  EXPECT_EQ(s.nearest_index(1, 34), 2u);  // 30 is closest
  EXPECT_EQ(s.nearest_index(1, 35), 2u);  // tie goes to the smaller candidate
  EXPECT_EQ(s.nearest_index(1, 1000), 4u);
  EXPECT_EQ(s.nearest_index(1, -7), 0u);
}

TEST(Tuner, FindsTheSeparableMinimum) {
  Tuner t;
  const SearchResult r = t.search(quadratic_space(), quadratic_cost);
  EXPECT_EQ(r.best, (std::vector<long long>{5, 30}));
  EXPECT_EQ(r.best_cost, 0.0);
  EXPECT_LE(r.best_cost, r.start_cost);
}

TEST(Tuner, BestNeverWorseThanTheStartPoint) {
  // The acceptance invariant behind "tuned >= default GF/s": the start point
  // is evaluated first, so the winner can only match or beat it.
  Tuner t;
  SearchOptions opt;
  opt.start = {5, 2};  // start *at* the optimum
  const SearchResult r = t.search(quadratic_space(), quadratic_cost, opt);
  EXPECT_EQ(r.start_cost, 0.0);
  EXPECT_LE(r.best_cost, r.start_cost);
  EXPECT_EQ(r.best, (std::vector<long long>{5, 30}));
}

TEST(Tuner, SameSeedSameSpaceIdenticalTrace) {
  Tuner t;
  SearchOptions opt;
  opt.seed = 1234;
  opt.budget = 20;
  const SearchResult a = t.search(quadratic_space(), quadratic_cost, opt);
  const SearchResult b = t.search(quadratic_space(), quadratic_cost, opt);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].values, b.trace[i].values) << i;
    EXPECT_EQ(a.trace[i].cost, b.trace[i].cost) << i;
    EXPECT_EQ(a.trace[i].improved, b.trace[i].improved) << i;
  }
}

TEST(Tuner, BudgetBoundsDistinctEvaluationsOnly) {
  Tuner t;
  SearchOptions opt;
  opt.budget = 7;
  opt.restarts = 5;  // plenty of revisits
  std::size_t calls = 0;
  const SearchResult r = t.search(
      quadratic_space(),
      [&](const std::vector<long long>& v) {
        ++calls;
        return quadratic_cost(v);
      },
      opt);
  EXPECT_LE(r.evaluations, 7u);
  // Memoized: the callback runs exactly once per distinct point.
  EXPECT_EQ(calls, r.evaluations);
  EXPECT_EQ(r.trace.size(), r.evaluations);
}

TEST(Tuner, TuneStoresAndBestDecodes) {
  Tuner t;
  const ShapeBucket shape = bucket(20000, 20000, 1200);
  SearchSpace s = SearchSpace{}
                      .add("mt", {2400, 4800, 7200}, 4800)
                      .add("nt", {2400, 4800, 7200}, 4800);
  const SearchResult r = t.tune("offload_dgemm", shape, s,
                                [](const std::vector<long long>& v) {
                                  // Cheapest at (2400, 7200).
                                  return std::abs(v[0] - 2400.0) +
                                         std::abs(v[1] - 7200.0);
                                });
  EXPECT_EQ(r.best, (std::vector<long long>{2400, 7200}));
  const auto k = t.best("offload_dgemm", shape);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->mt, 2400u);
  EXPECT_EQ(k->nt, 7200u);
  EXPECT_EQ(k->pack_cache_entries, 0u);  // untouched knob stays "not set"
  EXPECT_FALSE(t.best("offload_dgemm", bucket(100, 100, 10)).has_value());
  EXPECT_FALSE(t.best("other_op", shape).has_value());
}

TEST(Tuner, WarmStartRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/tuner_warmstart.json";
  const ShapeBucket shape = bucket(20000, 20000, 1200);
  {
    Tuner t;
    SearchSpace s = SearchSpace{}.add("mt", {100, 200}, 100).add(
        "nt", {100, 200}, 100);
    t.tune("offload_dgemm", shape, s, [](const std::vector<long long>& v) {
      return static_cast<double>(v[0] + v[1]);
    });
    ASSERT_TRUE(t.save(path));
  }
  Tuner cold;  // same default machine fingerprint
  ASSERT_TRUE(cold.load(path));
  const auto k = cold.best("offload_dgemm", shape);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->mt, 100u);
  EXPECT_EQ(k->nt, 100u);
  std::remove(path.c_str());
}

TEST(Knobs, EncodeDecodeRoundTrip) {
  Knobs k;
  k.mt = 4800;
  k.nt = 2400;
  k.pack_cache_entries = 64;
  k.chunk_k = 300;
  k.superstage_max_group = 16;
  k.superstage_period = 4;
  k.lookahead = 2;
  k.pipeline_subsets = 8;
  k.panel_nb_min = 16;
  k.laswp_col_chunk = 512;
  k.net_crossover_doubles = 4096;
  k.net_ring_segment = 512;
  k.mixed_nb = 96;
  const Knobs back = knobs_from_values(values_from_knobs(k));
  EXPECT_EQ(back.mt, k.mt);
  EXPECT_EQ(back.nt, k.nt);
  EXPECT_EQ(back.pack_cache_entries, k.pack_cache_entries);
  EXPECT_EQ(back.chunk_k, k.chunk_k);
  EXPECT_EQ(back.superstage_max_group, k.superstage_max_group);
  EXPECT_EQ(back.superstage_period, k.superstage_period);
  EXPECT_EQ(back.lookahead, k.lookahead);
  EXPECT_EQ(back.pipeline_subsets, k.pipeline_subsets);
  EXPECT_EQ(back.panel_nb_min, k.panel_nb_min);
  EXPECT_EQ(back.laswp_col_chunk, k.laswp_col_chunk);
  EXPECT_EQ(back.net_crossover_doubles, k.net_crossover_doubles);
  EXPECT_EQ(back.net_ring_segment, k.net_ring_segment);
  EXPECT_EQ(back.mixed_nb, k.mixed_nb);
  // lookahead 0 (kNone) is a *set* value, distinct from the -1 default.
  Knobs none;
  none.lookahead = 0;
  EXPECT_EQ(knobs_from_values(values_from_knobs(none)).lookahead, 0);
  // Unknown and out-of-range inputs are skipped, not wrapped.
  const Knobs odd = knobs_from_values({{"mt", -5}, {"lookahead", 9},
                                       {"warp_width", 32}});
  EXPECT_EQ(odd.mt, 0u);
  EXPECT_EQ(odd.lookahead, -1);
}

TEST(CanonicalSpaces, CoverTheDocumentedKnobs) {
  EXPECT_EQ(spaces::offload_tiles().dims(), 2u);
  EXPECT_EQ(spaces::functional_offload().dims(), 3u);
  EXPECT_EQ(spaces::gemm_chunk().dims(), 1u);
  EXPECT_EQ(spaces::lookahead().dims(), 2u);
  // Collective dispatch: crossover + ring segment, defaulted at the World's
  // built-in constants so an unsearched space reproduces stock dispatch.
  const SearchSpace ns = spaces::net();
  ASSERT_EQ(ns.dims(), 2u);
  EXPECT_EQ(ns.dim(0).name, "net_crossover_doubles");
  EXPECT_EQ(ns.dim(1).name, "net_ring_segment");
  const auto net_defaults = ns.values_at(ns.default_point());
  EXPECT_EQ(net_defaults[0], 1024);
  EXPECT_EQ(net_defaults[1], 1024);
  // Mixed-precision HPL: fp32 panel width + micro-kernel shape, defaulted
  // at the solver's built-ins (nb=64, auto-dispatch).
  const SearchSpace ms = spaces::mixed();
  ASSERT_EQ(ms.dims(), 2u);
  EXPECT_EQ(ms.dim(0).name, "mixed_nb");
  EXPECT_EQ(ms.dim(1).name, "microkernel");
  const auto mixed_defaults = ms.values_at(ms.default_point());
  EXPECT_EQ(mixed_defaults[0], 64);
  EXPECT_EQ(mixed_defaults[1], 0);
  // Panel critical path: cutoff + LASWP chunk, defaulted at the kernel's
  // built-in constants so an unsearched space reproduces the stock kernels.
  const SearchSpace ps = spaces::panel();
  ASSERT_EQ(ps.dims(), 2u);
  EXPECT_EQ(ps.dim(0).name, "panel_nb_min");
  EXPECT_EQ(ps.dim(1).name, "laswp_col_chunk");
  const auto defaults = ps.values_at(ps.default_point());
  EXPECT_EQ(defaults[0], 8);
  EXPECT_EQ(defaults[1],
            static_cast<long long>(xphi::blas::kLaswpColChunk));
  const SearchSpace ss = spaces::superstage(56);
  ASSERT_EQ(ss.dims(), 2u);
  // Group caps: a power-of-two ladder topped by the paper's default cap of
  // total / 2 (which need not itself be a power of two).
  const auto& caps = ss.dim(0).values;
  ASSERT_FALSE(caps.empty());
  EXPECT_EQ(caps.back(), 28);
  for (std::size_t i = 0; i + 1 < caps.size(); ++i) {
    EXPECT_LT(caps[i], 28);
    EXPECT_EQ(caps[i] & (caps[i] - 1), 0) << caps[i];
  }
  EXPECT_EQ(ss.values_at(ss.default_point())[0], 28);
}

TEST(Tuner, FingerprintIsTopologyNotNames) {
  EXPECT_EQ(Tuner{}.machine(), default_fingerprint());
  EXPECT_EQ(default_fingerprint(),
            fingerprint(sim::MachineSpec::sandy_bridge_ep(),
                        sim::MachineSpec::knights_corner()));
  EXPECT_NE(default_fingerprint().find("card1x61c"), std::string::npos);
}

// --- Consumer integration -------------------------------------------------

TEST(Consumers, OffloadDgemmWarmStartsFromTheDB) {
  const sim::KncGemmModel knc;
  const sim::SnbModel snb;
  const pci::PcieLink link;

  core::OffloadDgemmConfig cfg;
  cfg.m = cfg.n = 20000;
  const std::size_t cols = cfg.n / cfg.cards;

  Tuner t;
  TuningEntry e;
  e.knobs = {{"mt", 2400}, {"nt", 3600}};
  e.cost = 1.0;
  t.db().put({t.machine(), "offload_dgemm",
              bucket(cfg.m, cols, cfg.kt).key()},
             e);

  cfg.tuner = &t;
  const auto r = core::simulate_offload_dgemm(cfg, knc, snb, link);
  EXPECT_EQ(r.mt, 2400u);
  EXPECT_EQ(r.nt, 3600u);

  // Explicit knobs beat the DB, and a cold DB falls back to the candidate
  // table (same pick as no tuner at all).
  cfg.knobs.mt = cfg.knobs.nt = 4800;
  const auto explicit_r = core::simulate_offload_dgemm(cfg, knc, snb, link);
  EXPECT_EQ(explicit_r.mt, 4800u);
  cfg.knobs = {};
  Tuner cold;
  cfg.tuner = &cold;
  const auto from_table = core::simulate_offload_dgemm(cfg, knc, snb, link);
  cfg.tuner = nullptr;
  const auto no_tuner = core::simulate_offload_dgemm(cfg, knc, snb, link);
  EXPECT_EQ(from_table.mt, no_tuner.mt);
  EXPECT_EQ(from_table.nt, no_tuner.nt);
}

TEST(Consumers, TuningChangesSpeedNeverResults) {
  // The bitwise-determinism acceptance gate: the functional offload engine
  // must produce the identical C whether knobs come from defaults or a DB.
  using util::Matrix;
  constexpr std::size_t m = 96, n = 96, k = 24;
  Matrix<double> a(m, k), b(k, n), c_default(m, n), c_tuned(m, n);
  util::fill_hpl_matrix(a.view(), 1);
  util::fill_hpl_matrix(b.view(), 2);
  util::fill_hpl_matrix(c_default.view(), 3);
  util::fill_hpl_matrix(c_tuned.view(), 3);

  core::FunctionalOffloadConfig cfg;
  cfg.cards = 2;
  cfg.host_steals = true;
  core::offload_gemm_functional(-1.0, a.view(), b.view(), c_default.view(),
                                cfg);

  Tuner t;
  TuningEntry e;
  e.knobs = {{"mt", 24}, {"nt", 40}, {"pack_cache_entries", 4}};
  e.cost = 1.0;
  t.db().put({t.machine(), "offload_functional", bucket(m, n, k).key()}, e);
  cfg.tuner = &t;
  core::offload_gemm_functional(-1.0, a.view(), b.view(), c_tuned.view(),
                                cfg);

  EXPECT_EQ(util::max_abs_diff<double>(c_tuned.view(), c_default.view()), 0.0);
}

TEST(Consumers, NativeLinpackReadsSuperstageKnobs) {
  lu::NativeLinpackOptions opt;
  opt.workers = 2;
  const auto base = lu::run_native_linpack(64, 8000, opt);
  ASSERT_TRUE(base.functional.ok);

  Tuner t;
  TuningEntry e;
  e.knobs = {{"superstage_max_group", 2}, {"superstage_period", 8}};
  e.cost = 1.0;
  t.db().put({t.machine(), "native_lu", bucket(8000, 8000, opt.nb).key()}, e);
  opt.tuner = &t;
  const auto tuned = lu::run_native_linpack(64, 8000, opt);

  // The functional (numerical) run is identical — only the projection's
  // schedule moved.
  EXPECT_EQ(tuned.functional.residual, base.functional.residual);
  EXPECT_GT(tuned.projected.gflops, 0.0);
  // Capping groups at 2 cores with sparse regrouping slows the projection:
  // the knob demonstrably reached the scheduler.
  EXPECT_NE(tuned.projected.seconds, base.projected.seconds);
}

}  // namespace
}  // namespace xphi::tune
