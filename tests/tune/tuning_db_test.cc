#include "tune/tuning_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace xphi::tune {
namespace {

TuningEntry make_entry(double cost) {
  TuningEntry e;
  e.knobs = {{"mt", 4800}, {"nt", 2400}};
  e.cost = cost;
  e.budget = 48;
  return e;
}

const TuningKey kKey{"hostA", "offload_dgemm", "m131072_n131072_k2048"};

TEST(TuningDB, PutFindAndConflictRule) {
  TuningDB db;
  EXPECT_TRUE(db.put(kKey, make_entry(1.0)));
  ASSERT_NE(db.find(kKey), nullptr);
  EXPECT_EQ(db.find(kKey)->cost, 1.0);

  // Strictly lower cost replaces …
  EXPECT_TRUE(db.put(kKey, make_entry(0.5)));
  EXPECT_EQ(db.find(kKey)->cost, 0.5);
  // … equal or higher does not (ties keep the incumbent).
  EXPECT_FALSE(db.put(kKey, make_entry(0.5)));
  EXPECT_FALSE(db.put(kKey, make_entry(0.9)));
  EXPECT_EQ(db.find(kKey)->cost, 0.5);
  EXPECT_EQ(db.size(), 1u);
}

TEST(TuningDB, StringRoundTripPreservesEverything) {
  TuningDB db;
  db.put(kKey, make_entry(0.125));
  TuningEntry lu;
  lu.knobs = {{"superstage_max_group", 16}, {"superstage_period", 4}};
  lu.cost = 3.5;
  lu.budget = 16;
  db.put({"hostA", "native_lu", "m32768_n32768_k256"}, lu);

  TuningDB loaded;
  ASSERT_TRUE(loaded.load_from_string(db.save_to_string()));
  ASSERT_EQ(loaded.size(), 2u);
  const TuningEntry* e = loaded.find(kKey);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->knobs, make_entry(0.125).knobs);
  EXPECT_EQ(e->cost, 0.125);
  EXPECT_EQ(e->budget, 48);
  const TuningEntry* l =
      loaded.find({"hostA", "native_lu", "m32768_n32768_k256"});
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->knobs, lu.knobs);
  // Canonical save order: serializing the reload reproduces the bytes.
  EXPECT_EQ(loaded.save_to_string(), db.save_to_string());
}

TEST(TuningDB, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tunedb_roundtrip.json";
  TuningDB db;
  db.put(kKey, make_entry(0.25));
  ASSERT_TRUE(db.save(path));
  TuningDB loaded;
  ASSERT_TRUE(loaded.load(path));
  ASSERT_NE(loaded.find(kKey), nullptr);
  EXPECT_EQ(loaded.find(kKey)->cost, 0.25);
  std::remove(path.c_str());
}

TEST(TuningDB, MissingFileIsARejectionNotACrash) {
  TuningDB db;
  EXPECT_FALSE(db.load("/nonexistent/dir/tunedb.json"));
  EXPECT_TRUE(db.empty());
}

TEST(TuningDB, LoadMergesWithConflictRule) {
  TuningDB a;
  a.put(kKey, make_entry(1.0));
  TuningDB b;
  b.put(kKey, make_entry(0.5));  // better
  TuningEntry other = make_entry(2.0);
  b.put({"hostB", "offload_dgemm", "m4096_n4096_k1024"}, other);

  ASSERT_TRUE(a.load_from_string(b.save_to_string()));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.find(kKey)->cost, 0.5);

  // Loading the worse file back changes nothing.
  TuningDB worse;
  worse.put(kKey, make_entry(9.0));
  ASSERT_TRUE(a.load_from_string(worse.save_to_string()));
  EXPECT_EQ(a.find(kKey)->cost, 0.5);
}

TEST(TuningDB, MergeInMemory) {
  TuningDB a, b;
  a.put(kKey, make_entry(1.0));
  b.put(kKey, make_entry(0.75));
  a.merge(b);
  EXPECT_EQ(a.find(kKey)->cost, 0.75);
}

TEST(TuningDB, RejectsCorruptInput) {
  const char* bad[] = {
      "",
      "not json at all",
      "{",                                    // truncated
      "[1, 2, 3]",                            // wrong top-level type
      "{\"schema\": \"xphi-tunedb\"}",        // missing version/entries
      "{\"schema\": \"xphi-tunedb\", \"version\": 1, \"entries\": 7}",
      // entry missing required fields:
      "{\"schema\": \"xphi-tunedb\", \"version\": 1, \"entries\": "
      "[{\"machine\": \"x\"}]}",
      // non-integer knob value:
      "{\"schema\": \"xphi-tunedb\", \"version\": 1, \"entries\": "
      "[{\"machine\": \"x\", \"op\": \"o\", \"bucket\": \"b\", \"cost\": 1, "
      "\"budget\": 1, \"knobs\": {\"mt\": \"big\"}}]}",
      // trailing garbage after the document:
      "{\"schema\": \"xphi-tunedb\", \"version\": 1, \"entries\": []} extra",
  };
  for (const char* text : bad) {
    TuningDB db;
    db.put(kKey, make_entry(0.5));
    EXPECT_FALSE(db.load_from_string(text)) << text;
    // Rejection is all-or-nothing: the DB is untouched.
    EXPECT_EQ(db.size(), 1u) << text;
    EXPECT_EQ(db.find(kKey)->cost, 0.5) << text;
  }
}

TEST(TuningDB, RejectsWrongSchemaOrVersion) {
  const std::string other_schema =
      "{\"schema\": \"someone-elses-db\", \"version\": 1, \"entries\": []}";
  const std::string future_version =
      "{\"schema\": \"xphi-tunedb\", \"version\": 2, \"entries\": []}";
  TuningDB db;
  EXPECT_FALSE(db.load_from_string(other_schema));
  EXPECT_FALSE(db.load_from_string(future_version));
  EXPECT_TRUE(db.empty());
}

TEST(TuningDB, UnknownKnobNamesSurviveARoundTrip) {
  // Forward compatibility: a file written by a build with more knobs loads
  // fine; the unknown names ride along as opaque pairs.
  const std::string text =
      "{\"schema\": \"xphi-tunedb\", \"version\": 1, \"entries\": "
      "[{\"machine\": \"m\", \"op\": \"o\", \"bucket\": \"b\", \"cost\": 1.5, "
      "\"budget\": 8, \"knobs\": {\"mt\": 64, \"warp_width\": 32}}]}";
  TuningDB db;
  ASSERT_TRUE(db.load_from_string(text));
  const TuningEntry* e = db.find({"m", "o", "b"});
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->knobs.size(), 2u);
  TuningDB again;
  ASSERT_TRUE(again.load_from_string(db.save_to_string()));
  EXPECT_EQ(again.find({"m", "o", "b"})->knobs, e->knobs);
}

}  // namespace
}  // namespace xphi::tune
