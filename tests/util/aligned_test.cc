#include "util/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace xphi::util {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<double> b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAlignedStorage) {
  AlignedBuffer<double> b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, ValueInitializes) {
  AlignedBuffer<double> b(64);
  for (double v : b) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, ElementsAreWritable) {
  AlignedBuffer<int> b(10);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<int>(i * i);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b[i], static_cast<int>(i * i));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[3] = 42;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<int> a(8);
  AlignedBuffer<int> b(4);
  a[0] = 7;
  b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 7);
}

TEST(AlignedBuffer, ResetReallocates) {
  AlignedBuffer<int> a(4);
  a.reset(16);
  EXPECT_EQ(a.size(), 16u);
  for (int v : a) EXPECT_EQ(v, 0);
}

TEST(AlignedBuffer, ResetToZeroFrees) {
  AlignedBuffer<int> a(4);
  a.reset(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), nullptr);
}

}  // namespace
}  // namespace xphi::util
