#include "util/flops.h"

#include <gtest/gtest.h>

namespace xphi::util {
namespace {

TEST(Flops, Gemm) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(gemm_flops(28000, 28000, 300), 2.0 * 28000.0 * 28000.0 * 300.0);
}

TEST(Flops, Trsm) { EXPECT_DOUBLE_EQ(trsm_flops(4, 10), 160.0); }

TEST(Flops, PanelMatchesHandCount) {
  // 3x2 panel: j=0: 2 divides + 2*2*1 update = 6; j=1: 1 divide + 0 = 1.
  EXPECT_DOUBLE_EQ(getrf_panel_flops(3, 2), 7.0);
}

TEST(Flops, PanelOfFullSquareApproachesGetrf) {
  // For a square matrix the panel count equals the full LU count.
  const double full = getrf_flops(64);
  const double panel = getrf_panel_flops(64, 64);
  EXPECT_NEAR(panel / full, 1.0, 0.02);
}

TEST(Flops, LinpackDominatedByCubicTerm) {
  const double n = 30000;
  EXPECT_NEAR(linpack_flops(30000) / (2.0 / 3.0 * n * n * n), 1.0, 1e-3);
}

TEST(Flops, GflopsConversion) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.0), 0.0);
}

}  // namespace
}  // namespace xphi::util
