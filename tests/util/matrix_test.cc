#include "util/matrix.h"

#include <gtest/gtest.h>

namespace xphi::util {
namespace {

TEST(Matrix, RowMajorIndexing) {
  Matrix<double> m(3, 4);
  m(1, 2) = 5.0;
  EXPECT_EQ(m.data()[1 * 4 + 2], 5.0);
  EXPECT_EQ(m.ld(), 4u);
}

TEST(Matrix, PaddedLeadingDimension) {
  Matrix<double> m(3, 4, 8);
  m(2, 3) = 9.0;
  EXPECT_EQ(m.data()[2 * 8 + 3], 9.0);
  EXPECT_EQ(m.ld(), 8u);
}

TEST(Matrix, FillSetsAllEntries) {
  Matrix<double> m(5, 7, 9);
  m.fill(3.5);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 7; ++c) EXPECT_EQ(m(r, c), 3.5);
}

TEST(MatrixView, BlockAddressesParent) {
  Matrix<double> m(6, 6);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = static_cast<double>(10 * r + c);
  MatrixView<double> b = m.block(2, 3, 3, 2);
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b(0, 0), 23.0);
  EXPECT_EQ(b(2, 1), 44.0);
  b(1, 1) = -1.0;
  EXPECT_EQ(m(3, 4), -1.0);
}

TEST(MatrixView, NestedBlocks) {
  Matrix<double> m(8, 8);
  m.fill(0.0);
  auto outer = m.block(1, 1, 6, 6);
  auto inner = outer.block(2, 2, 2, 2);
  inner(0, 0) = 7.0;
  EXPECT_EQ(m(3, 3), 7.0);
}

TEST(MatrixView, ConstConversion) {
  Matrix<double> m(2, 2);
  m(0, 0) = 4.0;
  MatrixView<const double> cv = m.view();
  EXPECT_EQ(cv(0, 0), 4.0);
}

TEST(MatrixNorms, MaxAbsDiff) {
  Matrix<double> a(2, 2), b(2, 2);
  a.fill(1.0);
  b.fill(1.0);
  b(1, 0) = 1.25;
  EXPECT_DOUBLE_EQ(max_abs_diff<double>(a.view(), b.view()), 0.25);
}

TEST(MatrixNorms, NormInfIsMaxRowSum) {
  Matrix<double> a(2, 3);
  a(0, 0) = 1; a(0, 1) = -2; a(0, 2) = 3;   // row sum 6
  a(1, 0) = -4; a(1, 1) = 1; a(1, 2) = 0;   // row sum 5
  EXPECT_DOUBLE_EQ(norm_inf<double>(a.view()), 6.0);
}

TEST(MatrixView, EmptyBehaves) {
  MatrixView<double> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.rows(), 0u);
}

}  // namespace
}  // namespace xphi::util
