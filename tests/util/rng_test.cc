#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xphi::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, CenteredRange) {
  Rng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = g.next_centered();
    EXPECT_GE(v, -0.5);
    EXPECT_LT(v, 0.5);
  }
}

TEST(Rng, CenteredMeanNearZero) {
  Rng g(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.next_centered();
  EXPECT_NEAR(sum / n, 0.0, 5e-3);
}

TEST(Rng, NextInRange) {
  Rng g(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.next_in(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(HplFill, EntryIsPositionStable) {
  // The same global coordinates must yield the same value regardless of how
  // the matrix is partitioned — the property the distributed tests rely on.
  Matrix<double> whole(8, 8);
  fill_hpl_matrix(whole.view(), /*seed=*/99);
  Matrix<double> part(4, 4);
  fill_hpl_matrix(part.view(), /*seed=*/99, /*row0=*/2, /*col0=*/3);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(part(r, c), whole(2 + r, 3 + c));
}

TEST(HplFill, DifferentSeedsDiffer) {
  Matrix<double> a(4, 4), b(4, 4);
  fill_hpl_matrix(a.view(), 1);
  fill_hpl_matrix(b.view(), 2);
  EXPECT_GT(max_abs_diff<double>(a.view(), b.view()), 0.0);
}

TEST(HplFill, EntriesInHplRange) {
  Matrix<double> a(16, 16);
  fill_hpl_matrix(a.view(), 5);
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_GE(a(r, c), -0.5);
      EXPECT_LT(a(r, c), 0.5);
    }
}

TEST(HplFill, DiagDominantHasLargeDiagonal) {
  Matrix<double> a(8, 8);
  fill_diag_dominant(a.view(), 3);
  for (std::size_t i = 0; i < 8; ++i) {
    double off = 0;
    for (std::size_t c = 0; c < 8; ++c)
      if (c != i) off += std::abs(a(i, c));
    EXPECT_GT(std::abs(a(i, i)), off);
  }
}

}  // namespace
}  // namespace xphi::util
