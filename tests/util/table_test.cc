#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace xphi::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"k", "300"});
  t.add_row({"efficiency", "89.4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("89.4"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(89.4375, 2), "89.44");
  EXPECT_EQ(Table::fmt(89.4375, 0), "89");
}

TEST(Table, FmtIntegers) {
  EXPECT_EQ(Table::fmt(static_cast<std::size_t>(28000)), "28000");
  EXPECT_EQ(Table::fmt(-3), "-3");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintWritesCsvFile) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = "/tmp/xphi_table_test.csv";
  t.print(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xphi::util
