#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "util/barrier.h"

namespace xphi::util {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnAllGivesDistinctIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.run_on_all([&](std::size_t idx) { seen[idx].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, DynamicSchedulingCoversAllIndicesExactlyOnce) {
  // Counts large enough to trigger the atomic-claiming path, with ragged
  // remainders against every grain.
  ThreadPool pool(4);
  for (std::size_t count : {11u, 100u, 1001u}) {
    for (std::size_t grain : {0u, 1u, 3u, 7u, 2000u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(
          count, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "count=" << count << " grain=" << grain
                                     << " i=" << i;
    }
  }
}

TEST(ThreadPool, DynamicSchedulingBalancesSkewedWork) {
  // One pathological index costs ~count times the others. A static block
  // split serializes the whole block holding it; dynamic claiming lets the
  // remaining participants drain everything else meanwhile. We can't assert
  // wall-clock on a loaded machine, so assert the work all happens and that
  // many distinct claim batches were taken (i.e. scheduling was dynamic).
  ThreadPool pool(3);
  constexpr std::size_t kCount = 256;
  std::atomic<long> sum{0};
  pool.parallel_for(
      kCount,
      [&](std::size_t i) {
        if (i == 0) {
          volatile long burn = 0;
          for (int r = 0; r < 2000000; ++r) burn += r;
        }
        sum.fetch_add(static_cast<long>(i) + 1);
      },
      /*grain=*/1);
  EXPECT_EQ(sum.load(), static_cast<long>(kCount * (kCount + 1) / 2));
}

TEST(ThreadPool, SingleIndexRunsInline) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForAcceptsMoveOnlyBody) {
  // The dispatch must not re-wrap the body in a std::function (which would
  // require a copyable callable and a per-dispatch allocation); a move-only
  // callable therefore must compile and run.
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  auto guard = std::make_unique<int>(7);
  auto body = [&calls, g = std::move(guard)](std::size_t) {
    calls.fetch_add(*g);
  };
  pool.parallel_for(64, body);
  EXPECT_EQ(calls.load(), 64 * 7);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round)
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(sum.load(), 10 * (99 * 100 / 2));
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::atomic<bool> violation{false};
  ThreadPool pool(kThreads);
  pool.run_on_all([&](std::size_t) {
    for (int p = 0; p < 3; ++p) {
      phase_counts[p].fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier everyone must have bumped this phase's counter.
      if (phase_counts[p].load() != static_cast<int>(kThreads))
        violation.store(true);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace xphi::util
