#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/barrier.h"

namespace xphi::util {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunOnAllGivesDistinctIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.run_on_all([&](std::size_t idx) { seen[idx].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round)
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(sum.load(), 10 * (99 * 100 / 2));
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::atomic<bool> violation{false};
  ThreadPool pool(kThreads);
  pool.run_on_all([&](std::size_t) {
    for (int p = 0; p < 3; ++p) {
      phase_counts[p].fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier everyone must have bumped this phase's counter.
      if (phase_counts[p].load() != static_cast<int>(kThreads))
        violation.store(true);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait();
  SUCCEED();
}

}  // namespace
}  // namespace xphi::util
